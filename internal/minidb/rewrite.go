package minidb

import (
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// This file is the engine's rewrite component: PostgreSQL-style rules and
// WITH (CTE) processing. It deliberately mirrors the code structure of the
// paper's §V-B case study — RewriteQuery recursively processes DML inside
// WITH clauses and pushes single-statement DO INSTEAD rule results back into
// the CTE; replaceEmptyJointree backstops queries without a FROM clause.
// The seeded bug CVE-LEGO-PG-JOINTREE reproduces the paper's PostgreSQL
// SEGV: when a DO INSTEAD NOTIFY rule rewrites the INSERT inside a WITH
// clause, the CTE's query is left with a nil jointree and the planner
// dereferences it.

// applyRules checks for DO INSTEAD rules on (table, event). When an instead
// rule exists, the original DML is replaced by the rule actions and the
// caller must not perform the base operation.
func (e *Engine) applyRules(table string, ev sqlast.TriggerEvent) (handled bool, res *Result, err error) {
	rules := e.cat.rulesFor(table, ev)
	if len(rules) == 0 {
		return false, nil, nil
	}
	e.hit(pRewriteRule)
	if e.rewriteDepth >= e.limits.MaxRewriteDepth {
		return true, &Result{Msg: "rule depth cap"}, nil
	}
	e.rewriteDepth++
	defer func() { e.rewriteDepth-- }()

	anyInstead := false
	for _, r := range rules {
		if !r.Instead {
			// non-instead rules run in addition to the base operation
			if r.Action != nil {
				if _, aerr := e.dispatch(r.Action); aerr != nil {
					return true, nil, aerr
				}
			}
			continue
		}
		anyInstead = true
		e.hit(pRewriteInstead)
		if r.Action == nil {
			e.hit(pRewriteNothing)
			continue
		}
		if _, isNotify := r.Action.(*sqlast.NotifyStmt); isNotify {
			e.hit(pRewriteNotify)
			// Record that a DML statement was rewritten into a NOTIFY; if
			// this happened while rewriting a WITH clause, the CTE query
			// has lost its jointree (the case-study condition).
			if e.inWCTERewrite {
				e.wcteNotifyRewrite = true
			}
		}
		if _, aerr := e.dispatch(r.Action); aerr != nil {
			return true, nil, aerr
		}
	}
	if !anyInstead {
		return false, nil, nil
	}
	return true, &Result{Msg: "rewritten by rule"}, nil
}

// execWith implements WITH ... <body>: CTE relations are materialized into a
// frame visible to name resolution, and writable CTEs (DML bodies) execute
// in order, mirroring RewriteQuery's recursive processing of
// insert/update/delete statements in WITH.
func (e *Engine) execWith(st *sqlast.WithStmt) (*Result, error) {
	if st.Type() == sqlt.WithDML {
		e.hit(pRewriteWCTE)
	} else {
		e.hit(pRewriteCTE)
	}
	if e.rewriteDepth >= e.limits.MaxRewriteDepth {
		return nil, errValue("WITH nesting too deep")
	}
	e.rewriteDepth++
	defer func() { e.rewriteDepth-- }()

	frame := map[string]*relation{}
	e.cteFrames = append(e.cteFrames, frame)
	defer func() { e.cteFrames = e.cteFrames[:len(e.cteFrames)-1] }()

	for _, cte := range st.CTEs {
		switch body := cte.Body.(type) {
		case *sqlast.SelectStmt:
			rows, cols, err := e.execSelect(body, nil, 0)
			if err != nil {
				return nil, err
			}
			if len(cte.Cols) > 0 {
				for i := range cols {
					if i < len(cte.Cols) {
						cols[i] = cte.Cols[i]
					}
				}
			}
			frame[cte.Name] = &relation{cols: cols, qual: make([]string, len(cols)), rows: rows}
		default:
			// Writable CTE: recursively rewrite-and-execute the DML. This
			// is the RewriteQuery path of the case study.
			e.hit(pRewriteQuery)
			e.inWCTERewrite = true
			res, err := e.dispatch(cte.Body)
			e.inWCTERewrite = false
			if err != nil {
				return nil, err
			}
			// A DO INSTEAD NOTIFY rule swallowed the DML: the CTE's query
			// node now has no jointree. PostgreSQL misses this case and the
			// planner crashes later in replace_empty_jointree (seeded bug).
			cols := cte.Cols
			if len(cols) == 0 {
				cols = []string{"ctid"}
			}
			rows := [][]Value{}
			if res != nil && len(res.Rows) > 0 {
				rows = res.Rows
			}
			frame[cte.Name] = &relation{cols: cols, qual: make([]string, len(cols)), rows: rows}
		}
	}
	res, err := e.dispatch(st.Body)
	// The crash fires when the *body* query plans after the NOTIFY rewrite,
	// matching the paper's trigger sequence CREATE RULE -> NOTIFY -> ... ->
	// WITH(DML).
	if e.wcteNotifyRewrite {
		e.wcteNotifyRewrite = false
		if e.cfg.Dialect == sqlt.DialectPostgres && e.hazardsArmed() {
			e.raiseBug(bugPGJointree)
		}
	}
	return res, err
}

// replaceEmptyJointree supplies the implicit one-row relation for queries
// with no FROM clause, mirroring PostgreSQL's function of the same name.
func (e *Engine) replaceEmptyJointree() *relation {
	return &relation{cols: nil, qual: nil, rows: nil}
}

func (e *Engine) execExplain(st *sqlast.ExplainStmt) (*Result, error) {
	e.hit(pExplain)
	plan := e.planText(st.Stmt)
	if st.Analyze {
		e.hit(pExplainAnalyze)
		// EXPLAIN ANALYZE actually executes the statement.
		if _, err := e.dispatch(st.Stmt); err != nil {
			return nil, err
		}
	}
	rows := make([][]Value, len(plan))
	for i, line := range plan {
		rows[i] = []Value{Text(line)}
	}
	return &Result{Cols: []string{"QUERY PLAN"}, Rows: rows}, nil
}

// planText renders a plan sketch for EXPLAIN, taking the same access-path
// decisions the executor takes (so EXPLAIN exercises optimizer branches).
func (e *Engine) planText(s sqlast.Statement) []string {
	switch st := s.(type) {
	case *sqlast.SelectStmt:
		var lines []string
		if len(st.From) == 0 {
			lines = append(lines, "Result")
		} else if name, isBase := baseTableOf(st); isBase {
			if col, isEq := eqPredicateColumn(st.Where); isEq {
				useIdx := false
				for _, ix := range e.cat.indexesFor(name) {
					for _, c := range ix.Cols {
						if c == col && !ix.stale {
							useIdx = true
							lines = append(lines, "Index Scan using "+ix.Name+" on "+name)
							break
						}
					}
					if useIdx {
						break
					}
				}
				if !useIdx {
					lines = append(lines, "Seq Scan on "+name)
				}
			} else {
				lines = append(lines, "Seq Scan on "+name)
			}
		} else {
			lines = append(lines, "Nested Loop")
		}
		if len(st.GroupBy) > 0 {
			lines = append([]string{"HashAggregate"}, lines...)
		}
		if len(st.OrderBy) > 0 {
			lines = append([]string{"Sort"}, lines...)
		}
		if st.Limit != nil {
			lines = append([]string{"Limit"}, lines...)
		}
		return lines
	case *sqlast.InsertStmt:
		return []string{"Insert on " + st.Table}
	case *sqlast.UpdateStmt:
		return []string{"Update on " + st.Table}
	case *sqlast.DeleteStmt:
		return []string{"Delete on " + st.Table}
	default:
		return []string{"Utility"}
	}
}
