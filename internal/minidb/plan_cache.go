package minidb

// Plan cache (DESIGN.md §9): compiled programs are cached per engine, keyed
// by (expression shape, layout signature, schema fingerprint).
//
// The shape hash abstracts literal values — `x = 1` and `x = 'a'` share one
// program whose literal slots the binder fills per execution — so the mutate
// loop's value mutants all hit the cache. Column names, operators, CAST
// target types, and structural arity are part of the shape because they are
// baked into the closures. Fallback nodes (subqueries, function calls)
// contribute only their tag: their program re-enters the interpreter on the
// node bound at execution time, so any two subqueries share it.
//
// Invalidation is content-based rather than a counter: the schema
// fingerprint hashes the catalog's table/column/type structure, and any
// DDL- or TCL-category dispatch (plus SELECT INTO's materialization and the
// per-test-case reset) marks it dirty for lazy recomputation. Fuzzing
// recreates the same CREATE TABLE prologue case after case, so the
// fingerprint converges and cross-case plan reuse stays hot; any ALTER,
// DROP, rename, or rollback that actually changes structure yields a new
// fingerprint, and plans compiled against the old schema can never be
// looked up again. The cache is derived state: it is never checkpointed,
// and a size cap clears it wholesale (deterministically) rather than
// evicting by recency.

import (
	"sort"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// fnv64 offset/prime constants; two independent streams give a 128-bit hash
// so shape collisions are out of reach for any campaign length.
const (
	fnvOffset1 = 14695981039346656037
	fnvOffset2 = 9650029242287828579 // alternate offset basis
	fnvPrime   = 1099511628211
)

// hash128 accumulates a 128-bit FNV-style hash: stream 1 is FNV-1a
// (xor-then-multiply), stream 2 FNV-1 (multiply-then-xor) from a different
// offset, making the two 64-bit halves effectively independent.
type hash128 struct {
	h1, h2 uint64
}

func newHash128() hash128 {
	return hash128{h1: fnvOffset1, h2: fnvOffset2}
}

func (h *hash128) byte(b byte) {
	h.h1 = (h.h1 ^ uint64(b)) * fnvPrime
	h.h2 = (h.h2 * fnvPrime) ^ uint64(b)
}

func (h *hash128) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(0xff) // terminator so "ab"+"c" differs from "a"+"bc"
}

func (h *hash128) int(n int) {
	for i := 0; i < 4; i++ {
		h.byte(byte(n >> (8 * i)))
	}
}

// Shape tags, one per compiled form. InExpr splits by form because the list
// form compiles to a real program while the subquery form is a fallback.
const (
	tagLiteral byte = iota + 1
	tagColRef
	tagStar
	tagUnary
	tagBinary
	tagIsNull
	tagLike
	tagBetween
	tagInList
	tagInSubq
	tagCase
	tagCast
	tagSubquery
	tagExists
	tagFuncCall
	tagUnknown
)

// shapeHash folds x's compiled shape into h: node tags in preorder, plus
// every detail a program bakes in (column keys, operators, flags, CAST
// types, arity) — and nothing the binder supplies (literal values, fallback
// node internals).
func shapeHash(h *hash128, x sqlast.Expr) {
	switch v := x.(type) {
	case *sqlast.Literal:
		h.byte(tagLiteral)
	case *sqlast.ColRef:
		h.byte(tagColRef)
		h.str(v.Table)
		h.str(v.Name)
	case *sqlast.Star:
		h.byte(tagStar)
	case *sqlast.Unary:
		h.byte(tagUnary)
		h.str(v.Op)
		shapeHash(h, v.X)
	case *sqlast.Binary:
		h.byte(tagBinary)
		h.str(v.Op)
		shapeHash(h, v.L)
		shapeHash(h, v.R)
	case *sqlast.IsNullExpr:
		h.byte(tagIsNull)
		h.byte(boolByte(v.Not))
		shapeHash(h, v.X)
	case *sqlast.LikeExpr:
		h.byte(tagLike)
		h.byte(boolByte(v.Not))
		shapeHash(h, v.X)
		shapeHash(h, v.Pattern)
	case *sqlast.BetweenExpr:
		h.byte(tagBetween)
		h.byte(boolByte(v.Not))
		shapeHash(h, v.X)
		shapeHash(h, v.Lo)
		shapeHash(h, v.Hi)
	case *sqlast.InExpr:
		if v.Query != nil {
			h.byte(tagInSubq)
			return
		}
		h.byte(tagInList)
		h.byte(boolByte(v.Not))
		h.int(len(v.List))
		shapeHash(h, v.X)
		for _, le := range v.List {
			shapeHash(h, le)
		}
	case *sqlast.CaseExpr:
		h.byte(tagCase)
		h.byte(boolByte(v.Operand != nil))
		h.int(len(v.Whens))
		h.byte(boolByte(v.Else != nil))
		if v.Operand != nil {
			shapeHash(h, v.Operand)
		}
		for i := range v.Whens {
			shapeHash(h, v.Whens[i].Cond)
			shapeHash(h, v.Whens[i].Result)
		}
		if v.Else != nil {
			shapeHash(h, v.Else)
		}
	case *sqlast.CastExpr:
		h.byte(tagCast)
		h.str(v.TypeName)
		shapeHash(h, v.X)
	case *sqlast.Subquery:
		h.byte(tagSubquery)
	case *sqlast.ExistsExpr:
		h.byte(tagExists)
	case *sqlast.FuncCall:
		h.byte(tagFuncCall)
	default:
		h.byte(tagUnknown)
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// signature folds the layout into a 128-bit hash for the cache key; the full
// layout is still compared on every hit (layout.equal).
func (l *layout) signature() (uint64, uint64) {
	h := newHash128()
	h.int(len(l.frames))
	for i := range l.frames {
		f := &l.frames[i]
		h.byte(boolByte(f.lastWins))
		h.byte(boolByte(f.qkeys != nil))
		h.int(len(f.keys))
		for c := range f.keys {
			h.str(f.keys[c])
			if f.qkeys != nil {
				h.str(f.qkeys[c])
			}
		}
	}
	return h.h1, h.h2
}

// planKey is the full cache key.
type planKey struct {
	s1, s2 uint64 // expression shape
	l1, l2 uint64 // layout signature
	fp     uint64 // schema fingerprint
}

// planCacheCap bounds the per-engine cache. Reaching it clears the whole map
// — deterministic, unlike recency eviction — and in practice a campaign's
// working set of (shape, layout) pairs is far smaller.
const planCacheCap = 4096

// planCache holds one engine's compiled programs and counters.
type planCache struct {
	m        map[planKey]*program
	hits     uint64
	misses   uint64
	compiles uint64
}

// PlanStats reports plan-cache effectiveness for one engine (or, summed,
// one campaign).
type PlanStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Compiles uint64 `json:"compiles"`
}

// Add accumulates other into s.
func (s *PlanStats) Add(o PlanStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Compiles += o.Compiles
}

// PlanStats returns the engine's plan-cache counters.
func (e *Engine) PlanStats() PlanStats {
	if e.plans == nil {
		return PlanStats{}
	}
	return PlanStats{Hits: e.plans.hits, Misses: e.plans.misses, Compiles: e.plans.compiles}
}

// compiledFor returns the program for x against lay, consulting the cache.
// A hit is verified against the full layout; a verified mismatch (a true
// 128-bit collision, or a layout collision) recompiles and overwrites.
func (e *Engine) compiledFor(x sqlast.Expr, lay layout) *program {
	if e.plans == nil {
		e.plans = &planCache{m: make(map[planKey]*program, 64)}
	}
	h := newHash128()
	shapeHash(&h, x)
	l1, l2 := lay.signature()
	key := planKey{s1: h.h1, s2: h.h2, l1: l1, l2: l2, fp: e.schemaFingerprint()}
	if p, ok := e.plans.m[key]; ok && p.lay.equal(&lay) {
		e.plans.hits++
		return p
	}
	e.plans.misses++
	p := compileProgram(e, x, lay)
	e.plans.compiles++
	if len(e.plans.m) >= planCacheCap {
		e.plans.m = make(map[planKey]*program, 64)
	}
	e.plans.m[key] = p
	return p
}

// schemaFingerprint returns the content hash of the catalog structure a
// program could depend on: table names and their column names and declared
// types, in sorted order. Recomputed lazily after any dispatch that may have
// changed structure (see Engine.dispatch and reset).
func (e *Engine) schemaFingerprint() uint64 {
	if e.fpValid {
		return e.schemaFP
	}
	names := make([]string, 0, len(e.cat.Tables))
	for n := range e.cat.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	h := newHash128()
	for _, n := range names {
		t := e.cat.Tables[n]
		h.str(n)
		h.int(len(t.Cols))
		for ci := range t.Cols {
			h.str(t.Cols[ci].Name)
			h.str(t.Cols[ci].TypeName)
		}
	}
	e.schemaFP = h.h1
	e.fpValid = true
	return e.schemaFP
}

// preparedEval compiles (or fetches) x against lay and returns the program
// with a machine bound for this statement execution: literal and fallback
// slots filled, dynamic outer chain attached. Callers bind rows per row via
// machine.bindRow and run p.code.
func (e *Engine) preparedEval(x sqlast.Expr, lay layout, outer *scope) (*program, *machine) {
	p := e.compiledFor(x, lay)
	m := &machine{e: e, outer: outer, lay: &p.lay}
	if p.nlits > 0 {
		m.lits = make([]Value, 0, p.nlits)
	}
	if p.nfalls > 0 {
		m.falls = make([]sqlast.Expr, 0, p.nfalls)
	}
	m.bind(x)
	return p, m
}
