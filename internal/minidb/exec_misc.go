package minidb

import (
	"sort"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// --- DQL misc ----------------------------------------------------------

func (e *Engine) execTableStmt(st *sqlast.TableStmtNode) (*Result, error) {
	e.hit(pExecTableStmt)
	rel, err := e.resolveNamedRelation(st.Name, nil, 0)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: rel.cols, Rows: rel.rows}, nil
}

func (e *Engine) execValuesStmt(st *sqlast.ValuesStmtNode) (*Result, error) {
	e.hit(pExecValues)
	var rows [][]Value
	for _, exprRow := range st.Rows {
		row := make([]Value, len(exprRow))
		for i, x := range exprRow {
			v, err := e.eval(x, emptyScope, 0)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	var cols []string
	if len(rows) > 0 {
		for i := range rows[0] {
			cols = append(cols, "column"+itoaSmall(i+1))
		}
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

func (e *Engine) execShow(st *sqlast.ShowStmt) (*Result, error) {
	e.hit(pShow)
	switch st.Name {
	case "TABLES":
		var rows [][]Value
		for _, n := range e.cat.tableNames() {
			rows = append(rows, []Value{Text(n)})
		}
		return &Result{Cols: []string{"table_name"}, Rows: rows}, nil
	case "DATABASES":
		var names []string
		for n := range e.cat.Databases {
			names = append(names, n)
		}
		sort.Strings(names)
		var rows [][]Value
		for _, n := range names {
			rows = append(rows, []Value{Text(n)})
		}
		return &Result{Cols: []string{"database"}, Rows: rows}, nil
	default:
		name := strings.ToLower(st.Name)
		if v, okv := e.sess.vars[name]; okv {
			return &Result{Cols: []string{name}, Rows: [][]Value{{v}}}, nil
		}
		if v, okv := e.sess.globals[name]; okv {
			return &Result{Cols: []string{name}, Rows: [][]Value{{v}}}, nil
		}
		return &Result{Cols: []string{name}, Rows: [][]Value{{Null()}}}, nil
	}
}

func (e *Engine) execDescribe(st *sqlast.DescribeStmt) (*Result, error) {
	e.hit(pDescribe)
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	var rows [][]Value
	for _, c := range t.Cols {
		rows = append(rows, []Value{Text(c.Name), Text(c.TypeName), Bool(!c.NotNull)})
	}
	return &Result{Cols: []string{"Field", "Type", "Null"}, Rows: rows}, nil
}

// --- DCL ----------------------------------------------------------------

func (e *Engine) execGrant(st *sqlast.GrantStmt) (*Result, error) {
	if st.Revoke {
		e.hit(pAuthRevoke)
	} else {
		e.hit(pAuthGrant)
	}
	r, okr := e.cat.Roles[st.Role]
	if !okr {
		return nil, errValue("role %q does not exist", st.Role)
	}
	if _, err := e.lookTable(st.Table); err != nil {
		if _, isView := e.cat.Views[st.Table]; !isView {
			return nil, err
		}
	}
	if r.Privs[st.Table] == nil {
		r.Privs[st.Table] = map[string]bool{}
	}
	for _, p := range st.Privs {
		if st.Revoke {
			delete(r.Privs[st.Table], p)
		} else {
			r.Privs[st.Table][p] = true
		}
	}
	return ok("GRANT")
}

func (e *Engine) execSetRole(st *sqlast.SetRoleStmt) (*Result, error) {
	e.hit(pAuthSetRole)
	if strings.EqualFold(st.Role, "NONE") {
		e.sess.role = ""
		return ok("SET ROLE NONE")
	}
	if _, okr := e.cat.Roles[st.Role]; !okr {
		return nil, errValue("role %q does not exist", st.Role)
	}
	e.sess.role = st.Role
	return ok("SET ROLE")
}

// --- TCL ----------------------------------------------------------------

func (e *Engine) execTxn(st *sqlast.TxnStmt) (*Result, error) {
	switch st.What {
	case sqlt.Begin:
		e.hit(pTxnBegin)
		if e.inTxn() {
			e.hit(pTxnBeginNested)
			return nil, errValue("a transaction is already in progress")
		}
		e.txnStack = []*Catalog{e.cat.snapshot()}
		e.spNames = []string{""}
		return ok("BEGIN")
	case sqlt.Commit:
		e.hit(pTxnCommit)
		if !e.inTxn() {
			e.hit(pTxnCommitNoTxn)
			return nil, errValue("no transaction in progress")
		}
		e.txnStack = nil
		e.spNames = nil
		return ok("COMMIT")
	case sqlt.Rollback:
		e.hit(pTxnRollback)
		if !e.inTxn() {
			e.hit(pTxnRollbackNoTxn)
			return nil, errValue("no transaction in progress")
		}
		e.cat = e.txnStack[0]
		e.txnStack = nil
		e.spNames = nil
		return ok("ROLLBACK")
	case sqlt.Savepoint:
		e.hit(pTxnSavepoint)
		if !e.inTxn() {
			return nil, errValue("SAVEPOINT requires a transaction")
		}
		e.txnStack = append(e.txnStack, e.cat.snapshot())
		e.spNames = append(e.spNames, st.Name)
		return ok("SAVEPOINT")
	case sqlt.ReleaseSavepoint:
		e.hit(pTxnRelease)
		i := e.findSavepoint(st.Name)
		if i < 0 {
			return nil, errValue("savepoint %q does not exist", st.Name)
		}
		e.txnStack = e.txnStack[:i]
		e.spNames = e.spNames[:i]
		return ok("RELEASE")
	default: // RollbackToSavepoint
		e.hit(pTxnRollbackTo)
		i := e.findSavepoint(st.Name)
		if i < 0 {
			return nil, errValue("savepoint %q does not exist", st.Name)
		}
		e.cat = e.txnStack[i].snapshot()
		e.txnStack = e.txnStack[:i+1]
		e.spNames = e.spNames[:i+1]
		return ok("ROLLBACK TO")
	}
}

func (e *Engine) findSavepoint(name string) int {
	for i := len(e.spNames) - 1; i >= 1; i-- {
		if e.spNames[i] == name {
			return i
		}
	}
	return -1
}

func (e *Engine) execSetTransaction(st *sqlast.SetTransactionStmt) (*Result, error) {
	e.hit(pTxnIsolation)
	switch st.Mode {
	case "READ COMMITTED", "READ UNCOMMITTED", "REPEATABLE READ", "SERIALIZABLE":
		e.sess.isolation = st.Mode
		return ok("SET TRANSACTION")
	default:
		return nil, errValue("unknown isolation level %q", st.Mode)
	}
}

func (e *Engine) execLockTable(st *sqlast.LockTableStmt) (*Result, error) {
	e.hit(pLockTable)
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	if t.locked != "" {
		e.hit(pLockConflict)
	}
	mode := st.Mode
	if mode == "" {
		mode = "EXCLUSIVE"
	}
	t.locked = mode
	return ok("LOCK")
}

// --- session -------------------------------------------------------------

func (e *Engine) execSetVar(st *sqlast.SetVarStmt) (*Result, error) {
	e.hit(pSetVar)
	v, err := e.eval(st.Value, emptyScope, 0)
	if err != nil {
		return nil, err
	}
	name := strings.ToLower(st.Name)
	if st.Global {
		e.hit(pSetVarGlobal)
		e.sess.globals[name] = v
	} else {
		e.sess.vars[name] = v
	}
	return ok("SET")
}

func (e *Engine) execResetVar(st *sqlast.ResetVarStmt) (*Result, error) {
	e.hit(pResetVar)
	delete(e.sess.vars, strings.ToLower(st.Name))
	return ok("RESET")
}

func (e *Engine) execPragma(st *sqlast.PragmaStmt) (*Result, error) {
	e.hit(pPragma)
	name := strings.ToLower(st.Name)
	if st.Value == nil {
		v, exists := e.sess.vars["pragma."+name]
		if !exists {
			v = Null()
		}
		return &Result{Cols: []string{name}, Rows: [][]Value{{v}}}, nil
	}
	v, err := e.eval(st.Value, emptyScope, 0)
	if err != nil {
		return nil, err
	}
	e.sess.vars["pragma."+name] = v
	return ok("PRAGMA")
}

func (e *Engine) execUse(st *sqlast.UseStmt) (*Result, error) {
	e.hit(pUseDB)
	if !e.cat.Databases[st.DB] {
		return nil, errValue("database %q does not exist", st.DB)
	}
	e.sess.curDB = st.DB
	return ok("USE")
}

func (e *Engine) execAnalyze(st *sqlast.AnalyzeStmt) (*Result, error) {
	e.hit(pStorageAnalyze)
	if st.Table != "" {
		t, err := e.lookTable(st.Table)
		if err != nil {
			return nil, err
		}
		t.analyzed = true
		return ok("ANALYZE")
	}
	for _, n := range e.cat.tableNames() {
		e.cat.Tables[n].analyzed = true
	}
	return ok("ANALYZE")
}

func (e *Engine) execVacuum(st *sqlast.VacuumStmt) (*Result, error) {
	e.hit(pStorageVacuum)
	if st.Full {
		e.hit(pStorageVacFull)
	}
	compact := func(t *Table) {
		if len(t.Rows) > 0 {
			e.hit(pStorageCompact)
			// re-pack rows (drops spare capacity)
			packed := make([][]Value, len(t.Rows))
			copy(packed, t.Rows)
			t.Rows = packed
		}
	}
	if st.Table != "" {
		t, err := e.lookTable(st.Table)
		if err != nil {
			return nil, err
		}
		compact(t)
		return ok("VACUUM")
	}
	for _, n := range e.cat.tableNames() {
		compact(e.cat.Tables[n])
	}
	return ok("VACUUM")
}

func (e *Engine) execMaintenance(st *sqlast.MaintenanceStmt) (*Result, error) {
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	if st.What == sqlt.OptimizeTable {
		e.hit(pStorageOptimize)
		packed := make([][]Value, len(t.Rows))
		copy(packed, t.Rows)
		t.Rows = packed
		t.analyzed = true
		return ok("OPTIMIZE")
	}
	e.hit(pStorageCheck)
	// CHECK TABLE verifies unique invariants.
	for ci := range t.Cols {
		if !t.Cols[ci].Unique {
			continue
		}
		seen := map[string]bool{}
		for _, row := range t.Rows {
			if row[ci].IsNull() {
				continue
			}
			k := row[ci].Key()
			if seen[k] {
				return &Result{Msg: "CHECK: corrupt"}, nil
			}
			seen[k] = true
		}
	}
	return &Result{Msg: "CHECK: OK"}, nil
}

func (e *Engine) execFlush(st *sqlast.FlushStmt) (*Result, error) {
	e.hit(pStorageFlush)
	switch st.What {
	case "TABLES", "LOGS", "PRIVILEGES", "STATUS":
		return ok("FLUSH")
	default:
		return nil, errValue("unknown FLUSH target %q", st.What)
	}
}

func (e *Engine) execCheckpoint(*sqlast.CheckpointStmt) (*Result, error) {
	e.hit(pStorageCheckpoint)
	return ok("CHECKPOINT")
}

func (e *Engine) execDiscard(st *sqlast.DiscardStmt) (*Result, error) {
	e.hit(pDiscard)
	switch st.What {
	case "ALL":
		e.sess.vars = map[string]Value{}
		e.sess.prepared = map[string]sqlast.Statement{}
		e.sess.cursors = map[string]*cursor{}
		for n, t := range e.cat.Tables {
			if t.Temp {
				delete(e.cat.Tables, n)
			}
		}
	case "PLANS":
		// plan cache is virtual; nothing to do
	case "TEMP":
		for n, t := range e.cat.Tables {
			if t.Temp {
				delete(e.cat.Tables, n)
			}
		}
	case "SEQUENCES":
		for _, s := range e.cat.Sequences {
			s.Val = 0
		}
	default:
		return nil, errValue("unknown DISCARD target %q", st.What)
	}
	return ok("DISCARD")
}

func (e *Engine) execPrepare(st *sqlast.PrepareStmt) (*Result, error) {
	e.hit(pPrepare)
	if _, exists := e.sess.prepared[st.Name]; exists {
		return nil, errValue("prepared statement %q already exists", st.Name)
	}
	e.sess.prepared[st.Name] = st.Stmt
	return ok("PREPARE")
}

func (e *Engine) execExecute(st *sqlast.ExecuteStmt) (*Result, error) {
	e.hit(pExecPrepared)
	s, exists := e.sess.prepared[st.Name]
	if !exists {
		return nil, errValue("prepared statement %q does not exist", st.Name)
	}
	if e.triggerDepth >= e.limits.MaxTriggerDepth {
		e.hit(pTriggerDepthCap)
		return ok("EXECUTE (depth cap)")
	}
	e.triggerDepth++
	defer func() { e.triggerDepth-- }()
	return e.dispatch(s)
}

func (e *Engine) execDeallocate(st *sqlast.DeallocateStmt) (*Result, error) {
	e.hit(pDeallocate)
	if _, exists := e.sess.prepared[st.Name]; !exists {
		return nil, errValue("prepared statement %q does not exist", st.Name)
	}
	delete(e.sess.prepared, st.Name)
	return ok("DEALLOCATE")
}

func (e *Engine) execDeclareCursor(st *sqlast.DeclareCursorStmt) (*Result, error) {
	e.hit(pDeclareCursor)
	if _, exists := e.sess.cursors[st.Name]; exists {
		return nil, errValue("cursor %q already exists", st.Name)
	}
	rows, _, err := e.execSelect(st.Query, nil, 0)
	if err != nil {
		return nil, err
	}
	e.sess.cursors[st.Name] = &cursor{name: st.Name, rows: rows}
	return ok("DECLARE CURSOR")
}

func (e *Engine) execFetch(st *sqlast.FetchStmt) (*Result, error) {
	e.hit(pFetch)
	c, exists := e.sess.cursors[st.Cursor]
	if !exists {
		return nil, errValue("cursor %q does not exist", st.Cursor)
	}
	n := int(st.Count)
	if n <= 0 {
		n = 1
	}
	var rows [][]Value
	for i := 0; i < n && c.pos < len(c.rows); i++ {
		rows = append(rows, c.rows[c.pos])
		c.pos++
	}
	if c.pos >= len(c.rows) {
		e.hit(pFetchExhaust)
	}
	return &Result{Rows: rows, Msg: "FETCH"}, nil
}

func (e *Engine) execCloseCursor(st *sqlast.CloseCursorStmt) (*Result, error) {
	e.hit(pCloseCursor)
	if _, exists := e.sess.cursors[st.Name]; !exists {
		return nil, errValue("cursor %q does not exist", st.Name)
	}
	delete(e.sess.cursors, st.Name)
	return ok("CLOSE")
}

func (e *Engine) execListen(st *sqlast.ListenStmt) (*Result, error) {
	e.hit(pListen)
	e.sess.listening[st.Channel] = true
	return ok("LISTEN")
}

func (e *Engine) execNotify(st *sqlast.NotifyStmt) (*Result, error) {
	e.hit(pNotify)
	if e.sess.listening[st.Channel] {
		e.hit(pNotifyDeliver)
		e.sess.notices = append(e.sess.notices, st.Channel+":"+st.Payload)
	}
	return ok("NOTIFY")
}

func (e *Engine) execUnlisten(st *sqlast.UnlistenStmt) (*Result, error) {
	e.hit(pUnlisten)
	if st.Channel == "*" {
		e.sess.listening = map[string]bool{}
	} else {
		delete(e.sess.listening, st.Channel)
	}
	return ok("UNLISTEN")
}

func (e *Engine) execCluster(st *sqlast.ClusterStmt) (*Result, error) {
	e.hit(pStorageCluster)
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	var cols []string
	if st.Index != "" {
		ix, exists := e.cat.Indexes[st.Index]
		if !exists || ix.Table != st.Table {
			return nil, errValue("index %q does not exist on %q", st.Index, st.Table)
		}
		cols = ix.Cols
		t.clusteredBy = st.Index
	} else if t.clusteredBy != "" {
		if ix, exists := e.cat.Indexes[t.clusteredBy]; exists {
			cols = ix.Cols
		}
	} else {
		return nil, errValue("table %q has no clustering index", st.Table)
	}
	// physically sort rows by the index columns
	cidx := make([]int, 0, len(cols))
	for _, cn := range cols {
		ci := t.colIndex(cn)
		if ci >= 0 {
			cidx = append(cidx, ci)
		}
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		for _, ci := range cidx {
			c := Compare(t.Rows[a][ci], t.Rows[b][ci])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return ok("CLUSTER")
}
