package minidb

import (
	"math/rand"
	"testing"

	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestEngineNeverPanicsOnGeneratedInput is the substrate's core safety
// property: for arbitrary generated test cases, a disarmed engine must
// return errors, never panic. RunTestCase re-raises non-BugReport panics,
// so any engine defect fails this test loudly.
func TestEngineNeverPanicsOnGeneratedInput(t *testing.T) {
	for _, d := range sqlt.Dialects() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			inst := instantiate.New(rng, instantiate.NewLibrary(), d)
			eng := New(Config{Dialect: d})
			types := d.Types()
			for i := 0; i < 400; i++ {
				n := 1 + rng.Intn(8)
				seq := make(sqlt.Sequence, n)
				for j := range seq {
					seq[j] = types[rng.Intn(len(seq)+len(types))%len(types)]
				}
				tc := inst.TestCase(seq)
				out := eng.RunTestCase(tc)
				if out.Crash != nil {
					t.Fatalf("disarmed engine crashed on %q: %v", tc.SQL(), out.Crash)
				}
			}
		})
	}
}

// TestArmedEngineOnlyRaisesBugReports: with hazards armed, the only panics
// escaping statement execution are BugReports, captured as crashes.
func TestArmedEngineOnlyRaisesBugReports(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst := instantiate.New(rng, instantiate.NewLibrary(), sqlt.DialectMariaDB)
	eng := New(Config{Dialect: sqlt.DialectMariaDB, EnableHazards: true})
	types := sqlt.DialectMariaDB.Types()
	crashes := 0
	for i := 0; i < 400; i++ {
		n := 2 + rng.Intn(6)
		seq := make(sqlt.Sequence, n)
		for j := range seq {
			seq[j] = types[rng.Intn(len(types))]
		}
		out := eng.RunTestCase(inst.TestCase(seq))
		if out.Crash != nil {
			crashes++
			if out.Crash.ID == "" || out.Crash.Component == "" {
				t.Fatalf("malformed report: %+v", out.Crash)
			}
		}
	}
	t.Logf("%d crashes over 400 random cases", crashes)
}

// TestResourceLimits verifies challenge C3's guards: table capacity and
// trigger cascades are bounded.
func TestResourceLimits(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectPostgres, Limits: Limits{
		MaxRowsPerTable: 4, MaxResultRows: 8, MaxTriggerDepth: 2,
		MaxRewriteDepth: 3, MaxTriggerFires: 4,
	}})
	tc := mustScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1), (2), (3), (4);
INSERT INTO t VALUES (5);
SELECT COUNT(*) FROM t;
`)
	out := e.RunTestCase(tc)
	if out.Errs[2] == nil {
		t.Fatal("over-capacity insert must fail")
	}
	if out.Results[3].Rows[0][0].I != 4 {
		t.Fatal("capacity must hold at the limit")
	}

	// self-inserting trigger terminates via depth/fire caps
	e2 := New(Config{Dialect: sqlt.DialectPostgres})
	tc2 := mustScript(`
CREATE TABLE t (a INT);
CREATE TRIGGER boom AFTER INSERT ON t FOR EACH ROW INSERT INTO t VALUES (0);
INSERT INTO t VALUES (1);
SELECT COUNT(*) FROM t;
`)
	out2 := e2.RunTestCase(tc2)
	if out2.Crash != nil {
		t.Fatalf("crash: %v", out2.Crash)
	}
	n := lastOf(t, out2).Rows[0][0].I
	if n < 2 || n > int64(DefaultLimits().MaxTriggerFires)+2 {
		t.Fatalf("trigger cascade rows = %d, caps not applied", n)
	}
}

// TestRewriteDepthBounded: mutually recursive rules terminate.
func TestRewriteDepthBounded(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectPostgres})
	tc := mustScript(`
CREATE TABLE a (x INT);
CREATE TABLE b (x INT);
CREATE RULE ra AS ON INSERT TO a DO INSTEAD INSERT INTO b VALUES (1);
CREATE RULE rb AS ON INSERT TO b DO INSTEAD INSERT INTO a VALUES (2);
INSERT INTO a VALUES (0);
`)
	out := e.RunTestCase(tc)
	if out.Crash != nil {
		t.Fatalf("crash: %v", out.Crash)
	}
}

// --- helpers ---------------------------------------------------------------

func mustScript(sql string) sqlast.TestCase {
	return sqlparse.MustParseScript(sql)
}

func lastOf(t *testing.T, out Outcome) *Result {
	t.Helper()
	for i := len(out.Results) - 1; i >= 0; i-- {
		if out.Results[i] != nil {
			return out.Results[i]
		}
	}
	t.Fatal("no results")
	return nil
}
