package minidb

// Compiled expression programs (DESIGN.md §9): a one-pass compiler lowers a
// sqlast.Expr into a closure program whose column references are resolved at
// compile time to positional slots in the row being scanned, eliminating
// per-row tree dispatch and per-column map hashing. Programs are cached per
// engine by (expression shape, layout signature, schema fingerprint) — see
// plan_cache.go — so the mutate loop, triage replays, and checkpoint resumes
// skip compilation entirely.
//
// The coverage-equivalence contract: a compiled program must perform exactly
// the same depth checks, watchdog charges, and coverage probes, in exactly
// the same order, as Engine.eval would for the same expression. Coverage
// feeds seed scheduling, so any divergence changes whole campaigns. Each
// compile case below mirrors its eval case line for line; nodes the compiler
// does not understand (subqueries, function calls, stars in value position)
// are lowered to a fallback that re-enters the interpreter on the bound node,
// which by construction behaves identically.

import (
	"math"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// frame describes one slot frame a program can resolve columns against: the
// unqualified and qualified binding keys per slot, plus the duplicate-name
// resolution direction of the scope map it mirrors (scopeRowInto builds its
// map right-to-left so the leftmost duplicate wins; rowScope and sortRows'
// output map build forward so the last duplicate wins).
type frame struct {
	keys     []string // unqualified key per slot (always present)
	qkeys    []string // qualified key per slot ("" = none); nil = no quals
	lastWins bool     // duplicate resolution direction
}

// slotFor resolves key against the frame, honoring the duplicate direction.
// Returns -1 when the frame does not bind the key.
func (f *frame) slotFor(key string) int {
	if f.lastWins {
		for c := len(f.keys) - 1; c >= 0; c-- {
			if f.keys[c] == key || (f.qkeys != nil && f.qkeys[c] == key) {
				return c
			}
		}
		return -1
	}
	for c := range f.keys {
		if f.keys[c] == key || (f.qkeys != nil && f.qkeys[c] == key) {
			return c
		}
	}
	return -1
}

// layout is the compile-time view of the scopes a program runs under: up to
// two slot frames (innermost first), with anything unresolved falling through
// to the machine's dynamic outer scope chain at run time.
type layout struct {
	frames []frame
}

// resolve returns (frameIdx, slot) for key, or (-1, -1).
func (l *layout) resolve(key string) (int, int) {
	for fi := range l.frames {
		if s := l.frames[fi].slotFor(key); s >= 0 {
			return fi, s
		}
	}
	return -1, -1
}

// equal reports whether two layouts bind identically — the full verification
// run on every cache hit so a hash collision can never misresolve a slot.
func (l *layout) equal(o *layout) bool {
	if len(l.frames) != len(o.frames) {
		return false
	}
	for i := range l.frames {
		a, b := &l.frames[i], &o.frames[i]
		if a.lastWins != b.lastWins || len(a.keys) != len(b.keys) {
			return false
		}
		if (a.qkeys == nil) != (b.qkeys == nil) {
			return false
		}
		for c := range a.keys {
			if a.keys[c] != b.keys[c] {
				return false
			}
			if a.qkeys != nil && a.qkeys[c] != b.qkeys[c] {
				return false
			}
		}
	}
	return true
}

// relLayout builds the layout mirroring rel.scopeRowInto: every column binds
// its name and (when qualified) "qual.name", leftmost duplicate winning.
func relLayout(rel *relation) layout {
	return layout{frames: []frame{{keys: rel.cols, qkeys: rel.keyCache()}}}
}

// tableLayout builds the layout mirroring Engine.rowScope(t, row): name and
// "table.name" per column, last duplicate winning. Computed fresh per
// statement — tables mutate under ALTER, so it is never memoized on *Table.
func (e *Engine) tableLayout(t *Table) layout {
	keys := make([]string, len(t.Cols))
	qkeys := make([]string, len(t.Cols))
	for ci := range t.Cols {
		keys[ci] = t.Cols[ci].Name
		qkeys[ci] = t.Name + "." + t.Cols[ci].Name
	}
	return layout{frames: []frame{{keys: keys, qkeys: qkeys, lastWins: true}}}
}

// prog is one compiled expression node: the run-time equivalent of
// e.eval(node, scope, depth) against the machine's bound rows.
type prog func(m *machine, depth int) (Value, error)

// program is a compiled expression with its binding requirements and the
// layout it was compiled against (kept for cache-hit verification).
type program struct {
	code   prog
	lay    layout
	nlits  int
	nfalls int
}

// machine is the per-statement execution state a program runs against. The
// relation row IS the slot array: binding a row is two pointer writes.
type machine struct {
	e       *Engine
	rowA    []Value       // frame 0 row
	rowB    []Value       // frame 1 row (sortRows' source relation)
	outer   *scope        // dynamic scope chain for compile-time-unresolved names
	lits    []Value       // literal slots, rebound per statement by bind
	falls   []sqlast.Expr // fallback nodes, rebound per statement by bind
	winVals map[*sqlast.FuncCall]Value
	lay     *layout
	fbScope *scope // lazily built interpreter-equivalent scope for fallbacks
	fbValid bool   // fbScope reflects the current rows
}

// bind walks x in the exact preorder the compiler used, filling the literal
// and fallback slots for this statement execution. It must never descend
// into a fallback node's subtree (the compiler did not).
func (m *machine) bind(x sqlast.Expr) {
	switch v := x.(type) {
	case *sqlast.Literal:
		m.lits = append(m.lits, litValue(v))
	case *sqlast.ColRef, *sqlast.Star:
		// no slots
	case *sqlast.Unary:
		m.bind(v.X)
	case *sqlast.Binary:
		m.bind(v.L)
		m.bind(v.R)
	case *sqlast.IsNullExpr:
		m.bind(v.X)
	case *sqlast.LikeExpr:
		m.bind(v.X)
		m.bind(v.Pattern)
	case *sqlast.BetweenExpr:
		m.bind(v.X)
		m.bind(v.Lo)
		m.bind(v.Hi)
	case *sqlast.InExpr:
		if v.Query != nil {
			m.falls = append(m.falls, v)
			return
		}
		m.bind(v.X)
		for _, le := range v.List {
			m.bind(le)
		}
	case *sqlast.CaseExpr:
		if v.Operand != nil {
			m.bind(v.Operand)
		}
		for i := range v.Whens {
			m.bind(v.Whens[i].Cond)
			m.bind(v.Whens[i].Result)
		}
		if v.Else != nil {
			m.bind(v.Else)
		}
	case *sqlast.CastExpr:
		m.bind(v.X)
	default:
		// Subquery, ExistsExpr, FuncCall, unknown: interpreter fallback.
		m.falls = append(m.falls, x)
	}
}

// litValue converts a literal node exactly as eval's Literal case does.
func litValue(v *sqlast.Literal) Value {
	switch v.Kind {
	case sqlast.LitNull:
		return Null()
	case sqlast.LitInt:
		return Int(v.Int)
	case sqlast.LitFloat:
		return Float(v.Float)
	case sqlast.LitString:
		return Text(v.Str)
	default:
		return Bool(v.Bool)
	}
}

// bindRow points frame 0 at row and invalidates the fallback scope. It also
// replicates scopeRowInto's full-width access pattern: the interpreter binds
// every column of the relation, so a row shorter than the frame panics there
// with an index error — the compiled path must fail identically rather than
// silently succeed on a low slot.
//
//lego:hotpath
func (m *machine) bindRow(row []Value) {
	if n := len(m.lay.frames[0].keys); n > 0 {
		_ = row[n-1]
	}
	m.rowA = row
	m.fbValid = false
}

// fallbackScope lazily builds (then per-row rebinds) the scope chain an
// interpreter evaluation would have seen, so fallback nodes evaluate under
// identical name resolution. The maps are allocated once per machine and
// overwritten per row, like scopeRowInto's reuse.
func (m *machine) fallbackScope() *scope {
	if m.fbValid {
		return m.fbScope
	}
	if m.fbScope == nil {
		parent := m.outer
		if len(m.lay.frames) > 1 {
			f1 := &m.lay.frames[1]
			parent = &scope{row: make(map[string]Value, 2*len(f1.keys)), parent: m.outer}
		}
		f0 := &m.lay.frames[0]
		m.fbScope = &scope{row: make(map[string]Value, 2*len(f0.keys)), parent: parent}
	}
	bindFrame(m.fbScope.row, &m.lay.frames[0], m.rowA)
	if len(m.lay.frames) > 1 {
		bindFrame(m.fbScope.parent.row, &m.lay.frames[1], m.rowB)
	}
	m.fbScope.winVals = m.winVals
	m.fbValid = true
	return m.fbScope
}

// bindFrame writes one frame's bindings into a scope map, in the same write
// order as the scope builder it mirrors (direction decides duplicate wins).
func bindFrame(dst map[string]Value, f *frame, row []Value) {
	n := len(f.keys)
	if len(row) < n {
		n = len(row)
	}
	if f.lastWins {
		for c := 0; c < n; c++ {
			dst[f.keys[c]] = row[c]
			if f.qkeys != nil && f.qkeys[c] != "" {
				dst[f.qkeys[c]] = row[c]
			}
		}
		return
	}
	for c := n - 1; c >= 0; c-- {
		dst[f.keys[c]] = row[c]
		if f.qkeys != nil && f.qkeys[c] != "" {
			dst[f.qkeys[c]] = row[c]
		}
	}
}

// compiler is the one-pass lowering state.
type compiler struct {
	e      *Engine
	lay    *layout
	nlits  int
	nfalls int
}

// compileProgram lowers x against lay.
func compileProgram(e *Engine, x sqlast.Expr, lay layout) *program {
	c := &compiler{e: e, lay: &lay}
	code := c.compile(x)
	return &program{code: code, lay: lay, nlits: c.nlits, nfalls: c.nfalls}
}

// compile lowers one node. Except for fallback nodes (which delegate to eval,
// and eval performs its own prologue), every program starts with the depth
// check and watchdog charge in eval's order.
func (c *compiler) compile(x sqlast.Expr) prog {
	switch v := x.(type) {
	case *sqlast.Literal, *sqlast.ColRef, *sqlast.Star, *sqlast.Unary,
		*sqlast.Binary, *sqlast.IsNullExpr, *sqlast.LikeExpr,
		*sqlast.BetweenExpr, *sqlast.CaseExpr, *sqlast.CastExpr:
		body := c.compileBody(x)
		return func(m *machine, depth int) (Value, error) {
			if depth > maxEvalDepth {
				return Null(), errValue("expression nesting too deep")
			}
			if err := m.e.chargeStep(); err != nil {
				return Null(), err
			}
			return body(m, depth)
		}
	case *sqlast.InExpr:
		if v.Query == nil {
			body := c.compileBody(x)
			return func(m *machine, depth int) (Value, error) {
				if depth > maxEvalDepth {
					return Null(), errValue("expression nesting too deep")
				}
				if err := m.e.chargeStep(); err != nil {
					return Null(), err
				}
				return body(m, depth)
			}
		}
		return c.fallback()
	default:
		// Subquery, ExistsExpr, FuncCall, unknown node types.
		return c.fallback()
	}
}

// fallback lowers a node to an interpreter re-entry on the bound instance.
// eval performs the depth check, charge, and the node's own probes, so the
// fallback passes depth through unchanged.
func (c *compiler) fallback() prog {
	k := c.nfalls
	c.nfalls++
	return func(m *machine, depth int) (Value, error) {
		return m.e.eval(m.falls[k], m.fallbackScope(), depth)
	}
}

// compileBody lowers the post-prologue behavior of one node, mirroring the
// matching eval case exactly (probes included).
func (c *compiler) compileBody(x sqlast.Expr) prog {
	switch v := x.(type) {
	case *sqlast.Literal:
		k := c.nlits
		c.nlits++
		return func(m *machine, _ int) (Value, error) {
			return m.lits[k], nil
		}

	case *sqlast.ColRef:
		return c.compileColRef(v)

	case *sqlast.Star:
		return func(m *machine, _ int) (Value, error) {
			return Null(), errValue("* is not valid in this context")
		}

	case *sqlast.Unary:
		child := c.compile(v.X)
		switch v.Op {
		case "-":
			return func(m *machine, depth int) (Value, error) {
				val, err := child(m, depth+1)
				if err != nil {
					return Null(), err
				}
				switch val.K {
				case KInt:
					return Int(-val.I), nil
				case KFloat:
					return Float(-val.F), nil
				case KNull:
					return Null(), nil
				default:
					if f, ok := val.numeric(); ok {
						return Float(-f), nil
					}
					return Null(), errValue("cannot negate %s", val.String())
				}
			}
		case "NOT":
			return func(m *machine, depth int) (Value, error) {
				val, err := child(m, depth+1)
				if err != nil {
					return Null(), err
				}
				if val.IsNull() {
					return Null(), nil
				}
				return Bool(!val.Truthy()), nil
			}
		default:
			return func(m *machine, depth int) (Value, error) {
				return child(m, depth+1)
			}
		}

	case *sqlast.Binary:
		return c.compileBinary(v)

	case *sqlast.IsNullExpr:
		child := c.compile(v.X)
		not := v.Not
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalIsNull)
			val, err := child(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if not {
				return Bool(!val.IsNull()), nil
			}
			return Bool(val.IsNull()), nil
		}

	case *sqlast.LikeExpr:
		childX := c.compile(v.X)
		childP := c.compile(v.Pattern)
		not := v.Not
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalLike)
			val, err := childX(m, depth+1)
			if err != nil {
				return Null(), err
			}
			pat, err := childP(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if val.IsNull() || pat.IsNull() {
				return Null(), nil
			}
			mt := likeMatch(pat.String(), val.String())
			if not {
				mt = !mt
			}
			return Bool(mt), nil
		}

	case *sqlast.BetweenExpr:
		childX := c.compile(v.X)
		childLo := c.compile(v.Lo)
		childHi := c.compile(v.Hi)
		not := v.Not
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalBetween)
			val, err := childX(m, depth+1)
			if err != nil {
				return Null(), err
			}
			lo, err := childLo(m, depth+1)
			if err != nil {
				return Null(), err
			}
			hi, err := childHi(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if val.IsNull() || lo.IsNull() || hi.IsNull() {
				return Null(), nil
			}
			in := Compare(val, lo) >= 0 && Compare(val, hi) <= 0
			if not {
				in = !in
			}
			return Bool(in), nil
		}

	case *sqlast.InExpr:
		childX := c.compile(v.X)
		items := make([]prog, len(v.List))
		for i, le := range v.List {
			items[i] = c.compile(le)
		}
		not := v.Not
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalIn)
			val, err := childX(m, depth+1)
			if err != nil {
				return Null(), err
			}
			cands := make([]Value, len(items))
			for i, it := range items {
				cv, err := it(m, depth+1)
				if err != nil {
					return Null(), err
				}
				cands[i] = cv
			}
			if val.IsNull() {
				return Null(), nil
			}
			sawNull := false
			for _, cv := range cands {
				if cv.IsNull() {
					sawNull = true
					continue
				}
				if Equal(val, cv) {
					if not {
						return Bool(false), nil
					}
					return Bool(true), nil
				}
			}
			if sawNull {
				return Null(), nil
			}
			return Bool(not), nil
		}

	case *sqlast.CaseExpr:
		return c.compileCase(v)

	case *sqlast.CastExpr:
		child := c.compile(v.X)
		typeName := v.TypeName
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalCast)
			val, err := child(m, depth+1)
			if err != nil {
				return Null(), err
			}
			return CoerceToColumn(typeName, val), nil
		}

	default:
		panic("minidb: compileBody: unexpected node") //lego:allow panicdiscipline — unreachable: compile() routes every fallback node before compileBody
	}
}

// compileColRef resolves the reference at compile time when the layout binds
// it; otherwise the program searches the dynamic outer chain at run time,
// with eval's VALUE pseudo-column fallback replicated exactly.
func (c *compiler) compileColRef(v *sqlast.ColRef) prog {
	key := v.Name
	if v.Table != "" {
		key = v.Table + "." + v.Name
	}
	if fi, slot := c.lay.resolve(key); fi >= 0 {
		if fi == 0 {
			return func(m *machine, _ int) (Value, error) {
				m.e.hit(pEvalColRef)
				return m.rowA[slot], nil
			}
		}
		return func(m *machine, _ int) (Value, error) {
			m.e.hit(pEvalColRef)
			return m.rowB[slot], nil
		}
	}
	// Unresolved: eval would walk the whole chain for key (our frames miss
	// it by construction, leaving the outer chain), then retry the whole
	// chain for the exact key "VALUE" when the name folds to it.
	isValueName := strings.EqualFold(v.Name, "VALUE")
	vfi, vslot := -1, -1
	if isValueName {
		vfi, vslot = c.lay.resolve("VALUE")
	}
	return func(m *machine, _ int) (Value, error) {
		m.e.hit(pEvalColRef)
		if m.outer != nil {
			if val, ok := m.outer.lookup(key); ok {
				return val, nil
			}
		}
		if isValueName {
			switch vfi {
			case 0:
				return m.rowA[vslot], nil
			case 1:
				return m.rowB[vslot], nil
			}
			if m.outer != nil {
				if val, ok := m.outer.lookup("VALUE"); ok {
					return val, nil
				}
			}
		}
		return Null(), errValue("column %q does not exist", key)
	}
}

// compileBinary mirrors evalBinary: short-circuit three-valued logic for
// AND/OR, then comparison, concatenation, and arithmetic with the integer
// fast path.
func (c *compiler) compileBinary(v *sqlast.Binary) prog {
	l := c.compile(v.L)
	r := c.compile(v.R)

	switch v.Op {
	case "AND":
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalLogic)
			lv, err := l(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return Bool(false), nil
			}
			rv, err := r(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if !rv.IsNull() && !rv.Truthy() {
				return Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(true), nil
		}
	case "OR":
		return func(m *machine, depth int) (Value, error) {
			m.e.hit(pEvalLogic)
			lv, err := l(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if !lv.IsNull() && lv.Truthy() {
				return Bool(true), nil
			}
			rv, err := r(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if !rv.IsNull() && rv.Truthy() {
				return Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(false), nil
		}

	case "=", "<>", "<", "<=", ">", ">=":
		var pred func(int) bool
		switch v.Op {
		case "=":
			pred = func(c int) bool { return c == 0 }
		case "<>":
			pred = func(c int) bool { return c != 0 }
		case "<":
			pred = func(c int) bool { return c < 0 }
		case "<=":
			pred = func(c int) bool { return c <= 0 }
		case ">":
			pred = func(c int) bool { return c > 0 }
		default:
			pred = func(c int) bool { return c >= 0 }
		}
		return func(m *machine, depth int) (Value, error) {
			lv, err := l(m, depth+1)
			if err != nil {
				return Null(), err
			}
			rv, err := r(m, depth+1)
			if err != nil {
				return Null(), err
			}
			m.e.hit(pEvalCompare)
			if lv.IsNull() || rv.IsNull() {
				m.e.hit(pEvalCompareNull)
				return Null(), nil
			}
			return Bool(pred(Compare(lv, rv))), nil
		}

	case "||":
		return func(m *machine, depth int) (Value, error) {
			lv, err := l(m, depth+1)
			if err != nil {
				return Null(), err
			}
			rv, err := r(m, depth+1)
			if err != nil {
				return Null(), err
			}
			m.e.hit(pEvalConcat)
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Text(lv.String() + rv.String()), nil
		}

	case "+", "-", "*", "/", "%":
		op := v.Op[0]
		opStr := v.Op
		return func(m *machine, depth int) (Value, error) {
			lv, err := l(m, depth+1)
			if err != nil {
				return Null(), err
			}
			rv, err := r(m, depth+1)
			if err != nil {
				return Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				m.e.hit(pEvalArithNull)
				return Null(), nil
			}
			if lv.K == KInt && rv.K == KInt {
				m.e.hit(pEvalArithInt)
				switch op {
				case '+':
					return Int(lv.I + rv.I), nil
				case '-':
					return Int(lv.I - rv.I), nil
				case '*':
					return Int(lv.I * rv.I), nil
				case '/':
					if rv.I == 0 {
						m.e.hit(pEvalDivZero)
						return Null(), errValue("division by zero")
					}
					return Int(lv.I / rv.I), nil
				default:
					if rv.I == 0 {
						m.e.hit(pEvalDivZero)
						return Null(), errValue("division by zero")
					}
					return Int(lv.I % rv.I), nil
				}
			}
			m.e.hit(pEvalArithFloat)
			fl, okL := lv.numeric()
			fr, okR := rv.numeric()
			if !okL || !okR {
				return Null(), errValue("non-numeric operand for %s", opStr)
			}
			switch op {
			case '+':
				return Float(fl + fr), nil
			case '-':
				return Float(fl - fr), nil
			case '*':
				return Float(fl * fr), nil
			case '/':
				if fr == 0 {
					m.e.hit(pEvalDivZero)
					return Null(), errValue("division by zero")
				}
				return Float(fl / fr), nil
			default:
				if fr == 0 {
					m.e.hit(pEvalDivZero)
					return Null(), errValue("division by zero")
				}
				return Float(math.Mod(fl, fr)), nil
			}
		}

	default:
		// evalBinary evaluates both operands (probes and charges included)
		// before discovering the operator is unknown.
		opStr := v.Op
		return func(m *machine, depth int) (Value, error) {
			if _, err := l(m, depth+1); err != nil {
				return Null(), err
			}
			if _, err := r(m, depth+1); err != nil {
				return Null(), err
			}
			return Null(), errValue("unknown operator %q", opStr)
		}
	}
}

// compileCase mirrors eval's CaseExpr case: operand form compares each WHEN
// against the operand; searched form takes the first truthy condition.
func (c *compiler) compileCase(v *sqlast.CaseExpr) prog {
	var operand prog
	if v.Operand != nil {
		operand = c.compile(v.Operand)
	}
	conds := make([]prog, len(v.Whens))
	results := make([]prog, len(v.Whens))
	for i := range v.Whens {
		conds[i] = c.compile(v.Whens[i].Cond)
		results[i] = c.compile(v.Whens[i].Result)
	}
	var elseP prog
	if v.Else != nil {
		elseP = c.compile(v.Else)
	}
	return func(m *machine, depth int) (Value, error) {
		m.e.hit(pEvalCase)
		if operand != nil {
			op, err := operand(m, depth+1)
			if err != nil {
				return Null(), err
			}
			for i := range conds {
				cv, err := conds[i](m, depth+1)
				if err != nil {
					return Null(), err
				}
				if !cv.IsNull() && !op.IsNull() && Equal(op, cv) {
					return results[i](m, depth+1)
				}
			}
		} else {
			for i := range conds {
				cv, err := conds[i](m, depth+1)
				if err != nil {
					return Null(), err
				}
				if cv.Truthy() {
					return results[i](m, depth+1)
				}
			}
		}
		if elseP != nil {
			m.e.hit(pEvalCaseElse)
			return elseP(m, depth+1)
		}
		return Null(), nil
	}
}
