package minidb

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// renderOutcome flattens an outcome into a comparable string: result shape,
// row values, messages, and error texts in statement order. RunTestCase
// reuses its result buffers across calls, so outcomes must be rendered
// before the next run.
func renderOutcome(out Outcome) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "executed=%d errors=%d\n", out.Executed, out.Errors)
	for i := range out.Results {
		if r := out.Results[i]; r != nil {
			fmt.Fprintf(&sb, "%d: cols=%v affected=%d msg=%q rows=", i, r.Cols, r.Affected, r.Msg)
			for _, row := range r.Rows {
				sb.WriteByte('[')
				for _, v := range row {
					sb.WriteString(v.String())
					sb.WriteByte(',')
				}
				sb.WriteByte(']')
			}
			sb.WriteByte('\n')
		}
		if err := out.Errs[i]; err != nil {
			fmt.Fprintf(&sb, "%d: err=%v\n", i, err)
		}
	}
	return sb.String()
}

// equivalenceScripts exercises every expression position the compiler lowers
// (WHERE, projection, ORDER BY, join ON, window partition/order, UPDATE SET,
// DELETE WHERE) plus every fallback (subqueries, EXISTS, function calls) and
// the error paths (unknown columns, division, depth). The compiled engine
// must match the interpreter on results, errors, AND coverage.
var equivalenceScripts = []string{
	// Comparisons, arithmetic, 3-valued logic, NULL propagation.
	`CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 10), (2, 20), (3, NULL);
SELECT a, b FROM t WHERE a > 1 AND b < 30;
SELECT a FROM t WHERE b IS NULL;
SELECT a FROM t WHERE NOT (a = 2) OR b = 10;
SELECT a + b, a - b, a * 2, b / a, b % a FROM t;
SELECT -a, a / 0 FROM t;
SELECT a FROM t WHERE NULL AND a = 1;
SELECT a FROM t WHERE NULL OR a = 1;`,

	// Strings, concat, CASE, casts, IN lists.
	`CREATE TABLE s (k INT, name VARCHAR(100));
INSERT INTO s VALUES (1, 'aa'), (2, 'bb'), (3, NULL);
SELECT name || '-' || k FROM s;
SELECT CASE WHEN k = 1 THEN 'one' WHEN k = 2 THEN 'two' ELSE 'many' END FROM s;
SELECT CASE k WHEN 1 THEN 10 ELSE 0 END FROM s;
SELECT CAST(k AS TEXT), CAST('12' AS INT) FROM s;
SELECT k FROM s WHERE k IN (1, 3);
SELECT k FROM s WHERE k NOT IN (99, NULL);`,

	// Fallback nodes: subqueries in value position, IN (subquery), EXISTS,
	// function calls — all re-enter the interpreter from compiled programs.
	`CREATE TABLE f (a INT, b VARCHAR(100));
INSERT INTO f VALUES (1, 'x'), (2, 'y');
SELECT a FROM f WHERE a = (SELECT MAX(a) FROM f);
SELECT a FROM f WHERE a IN (SELECT a FROM f WHERE b = 'x');
SELECT a FROM f WHERE EXISTS (SELECT 1 FROM f WHERE b = 'zzz');
SELECT UPPER(b), LENGTH(b) FROM f WHERE LENGTH(b) = 1;`,

	// Joins (compiled ON), ORDER BY expressions and ordinals, LIMIT.
	`CREATE TABLE ja (id INT, v INT);
CREATE TABLE jb (id INT, w INT);
INSERT INTO ja VALUES (1, 10), (2, 20), (3, 30);
INSERT INTO jb VALUES (1, 100), (2, 200);
SELECT ja.v, jb.w FROM ja JOIN jb ON ja.id = jb.id;
SELECT ja.v FROM ja LEFT JOIN jb ON ja.id = jb.id AND jb.w > 100;
SELECT v FROM ja ORDER BY v * -1;
SELECT v, id FROM ja ORDER BY 2 DESC, v LIMIT 2;`,

	// Windows: compiled partition/order keys around interpreted frames.
	`CREATE TABLE w (g INT, v INT);
INSERT INTO w VALUES (1, 10), (1, 20), (2, 30);
SELECT ROW_NUMBER() OVER (PARTITION BY g ORDER BY v DESC) FROM w;
SELECT v, RANK() OVER (ORDER BY v + 0) FROM w ORDER BY v;
SELECT SUM(v) OVER (PARTITION BY g) FROM w ORDER BY 1;
SELECT LEAD(v) OVER (ORDER BY v) FROM w ORDER BY 1 DESC;`,

	// DML: compiled WHERE/ORDER BY in UPDATE/DELETE, compiled SET exprs,
	// and the trigger gate (SET exprs stay interpreted under triggers).
	`CREATE TABLE d (a INT, b INT);
INSERT INTO d VALUES (1, 10), (2, 20), (3, 30);
UPDATE d SET b = b + a WHERE a > 1;
SELECT * FROM d;
DELETE FROM d WHERE b > 25;
SELECT * FROM d;
CREATE TABLE log (m INT);
CREATE TRIGGER tg AFTER UPDATE ON d FOR EACH ROW INSERT INTO log VALUES (1);
UPDATE d SET b = a * 100 WHERE a = 1;
SELECT * FROM d;
SELECT * FROM log;`,

	// Error paths: unknown columns, type mismatches, nesting past the eval
	// depth limit. Both paths must produce identical error text and probes.
	`CREATE TABLE e1 (a INT);
INSERT INTO e1 VALUES (1);
SELECT nosuch FROM e1;
SELECT a FROM e1 WHERE nosuch = 1;
SELECT a FROM e1 WHERE a = ((((((((((((((((((((((((((1))))))))))))))))))))))))));
SELECT a + 'x' FROM e1;`,

	// Set operations and aggregates around compiled ORDER BY.
	`CREATE TABLE u (a INT, b INT);
INSERT INTO u VALUES (1, 2), (3, 4);
SELECT a FROM u UNION SELECT b FROM u ORDER BY a DESC;
SELECT SUM(a), COUNT(b) FROM u;
SELECT a FROM u GROUP BY a HAVING SUM(b) > 2 ORDER BY a;`,
}

// runEquiv executes one script on an engine and returns the rendered
// outcome plus the coverage it produced.
func runEquiv(e *Engine, script string) (string, []coverage.EdgeState) {
	tc := sqlparse.MustParseScript(script)
	tr := e.Tracer()
	tr.Reset()
	out := e.RunTestCase(tc)
	rendered := renderOutcome(out)
	m := coverage.NewMap()
	m.Accumulate(tr)
	return rendered, m.Export()
}

// TestCompiledMatchesInterpreter is the coverage-equivalence contract: for
// every script, the default (compiled) engine and a DisablePlanCache engine
// produce identical results, identical errors, and identical coverage. The
// engines are reused across scripts so later cases run against warm caches —
// exactly the fuzzing steady state.
func TestCompiledMatchesInterpreter(t *testing.T) {
	compiled := New(Config{Dialect: sqlt.DialectMySQL})
	interp := New(Config{Dialect: sqlt.DialectMySQL, DisablePlanCache: true})
	for i, script := range equivalenceScripts {
		outC, covC := runEquiv(compiled, script)
		outI, covI := runEquiv(interp, script)
		if outC != outI {
			t.Errorf("script %d: outcomes diverged\ncompiled:\n%s\ninterpreter:\n%s", i, outC, outI)
		}
		if !reflect.DeepEqual(covC, covI) {
			t.Errorf("script %d: coverage diverged: %d vs %d edges", i, len(covC), len(covI))
		}
	}
	if st := compiled.PlanStats(); st.Compiles == 0 {
		t.Fatalf("compiled engine never compiled a plan: %+v", st)
	}
	if st := interp.PlanStats(); st.Compiles != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("DisablePlanCache engine touched the plan cache: %+v", st)
	}
}

// TestPlanCacheReuseAcrossLiterals: literal values are abstracted out of the
// shape hash, so value-mutated statements — the dominant fuzzing mutation —
// hit plans compiled for their siblings.
func TestPlanCacheReuseAcrossLiterals(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	run(t, e, `
CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 10), (2, 20);
SELECT b FROM t WHERE a = 1;
`)
	base := e.PlanStats()
	run(t, e, `
CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 10), (2, 20);
SELECT b FROM t WHERE a = 2;
`)
	st := e.PlanStats()
	if st.Hits <= base.Hits {
		t.Fatalf("value-mutated statement missed the cache: before %+v, after %+v", base, st)
	}
	if st.Compiles != base.Compiles {
		t.Fatalf("value-mutated statement recompiled: before %+v, after %+v", base, st)
	}
}

// TestDDLInvalidatesPlans: renaming columns re-keys every affected plan (the
// layout and the schema fingerprint both change), so a statement that would
// have read stale slots is recompiled against the new shape and stays
// equivalent to the interpreter.
func TestDDLInvalidatesPlans(t *testing.T) {
	const script = `
CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 10);
SELECT a FROM t WHERE a = 1;
ALTER TABLE t RENAME COLUMN a TO z;
ALTER TABLE t RENAME COLUMN b TO a;
SELECT a FROM t WHERE a = 10;
SELECT z FROM t WHERE a = 10;
`
	compiled := New(Config{Dialect: sqlt.DialectMySQL})
	interp := New(Config{Dialect: sqlt.DialectMySQL, DisablePlanCache: true})
	outC, covC := runEquiv(compiled, script)
	outI, covI := runEquiv(interp, script)
	if outC != outI {
		t.Fatalf("post-DDL outcomes diverged\ncompiled:\n%s\ninterpreter:\n%s", outC, outI)
	}
	if !reflect.DeepEqual(covC, covI) {
		t.Fatalf("post-DDL coverage diverged")
	}
	// The second SELECT must have found the renamed column's data: column
	// "a" is the old b (value 10), so the plan compiled for the original
	// shape cannot have been reused.
	if !strings.Contains(outC, "rows=[10,]") {
		t.Fatalf("post-DDL SELECT did not see the new schema:\n%s", outC)
	}
}

// TestSchemaFingerprint: the fingerprint is content-based, so structure-
// preserving dispatches (TCL, reruns) keep it stable while DDL that changes
// structure moves it.
func TestSchemaFingerprint(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	run(t, e, `CREATE TABLE t (a INT, b INT);`)
	fp1 := e.schemaFingerprint()
	run(t, e, `CREATE TABLE t (a INT, b INT);`)
	if fp2 := e.schemaFingerprint(); fp2 != fp1 {
		t.Fatalf("identical schema, different fingerprint: %x vs %x", fp1, fp2)
	}
	run(t, e, `CREATE TABLE t (a INT, b INT); ALTER TABLE t ADD COLUMN c INT;`)
	if fp3 := e.schemaFingerprint(); fp3 == fp1 {
		t.Fatalf("ALTER ADD COLUMN left fingerprint unchanged: %x", fp3)
	}
}

// TestBinderSlotCounts: the binder walks the compiler's preorder, so every
// literal and fallback slot the compiler allocated must be populated.
func TestBinderSlotCounts(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	run(t, e, `CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 2);`)
	tbl := e.cat.Tables["t"]
	if tbl == nil {
		t.Fatal("table t missing")
	}
	stmt := sqlparse.MustParseScript(
		`SELECT a FROM t WHERE a = 1 AND b IN (2, 3) AND LENGTH('x') = (SELECT 1);`)[0].(*sqlast.SelectStmt)
	p, m := e.preparedEval(stmt.Where, e.tableLayout(tbl), nil)
	if len(m.lits) != p.nlits || len(m.falls) != p.nfalls {
		t.Fatalf("binder slots: lits %d/%d, falls %d/%d", len(m.lits), p.nlits, len(m.falls), p.nfalls)
	}
	if p.nlits == 0 {
		t.Fatal("expected literal slots")
	}
	if p.nfalls == 0 {
		t.Fatal("expected fallback slots (function call, subquery)")
	}
}

// TestCompiledEvalZeroAllocPerRow pins the compiled hot path's allocation
// contract: evaluating a slot-read comparison over bound rows allocates
// nothing. This is the per-row cost the plan cache exists to reach.
func TestCompiledEvalZeroAllocPerRow(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	run(t, e, `CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 2);`)
	tbl := e.cat.Tables["t"]
	stmt := sqlparse.MustParseScript(`SELECT a FROM t WHERE a > 0 AND b < 10;`)[0].(*sqlast.SelectStmt)
	p, m := e.preparedEval(stmt.Where, e.tableLayout(tbl), nil)
	row := []Value{Int(1), Int(2)}
	// Warm the tracer's count map so steady-state flushes stay allocation-free.
	m.bindRow(row)
	if _, err := p.code(m, 1); err != nil {
		t.Fatal(err)
	}
	e.flushCov()
	got := testing.AllocsPerRun(500, func() {
		e.stepsUsed = 0 // per-statement watchdog budget, reset by ExecStmt in production
		m.bindRow(row)
		if _, err := p.code(m, 1); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Fatalf("compiled per-row eval allocates: %.1f allocs/op, want 0", got)
	}
}
