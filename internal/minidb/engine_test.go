package minidb

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func newPG(t *testing.T) *Engine {
	t.Helper()
	return New(Config{Dialect: sqlt.DialectPostgres})
}

// run executes a script against a fresh engine and fails the test on crash.
func run(t *testing.T, e *Engine, script string) Outcome {
	t.Helper()
	tc := sqlparse.MustParseScript(script)
	out := e.RunTestCase(tc)
	if out.Crash != nil {
		t.Fatalf("unexpected crash: %v", out.Crash)
	}
	return out
}

func lastResult(t *testing.T, out Outcome) *Result {
	t.Helper()
	for i := len(out.Results) - 1; i >= 0; i-- {
		if out.Results[i] != nil {
			return out.Results[i]
		}
	}
	t.Fatal("no results")
	return nil
}

func TestBasicCRUD(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
INSERT INTO t1 VALUES (2, 1);
SELECT v2 FROM t1 WHERE v1 = 1;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	res := lastResult(t, out)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderMatters(t *testing.T) {
	// Paper Figure 2: same statements, different order, different results.
	q1 := `
CREATE TABLE t1 (a INT, b VARCHAR(100));
INSERT INTO t1 VALUES (1, 'name1');
INSERT INTO t1 VALUES (3, 'name1');
SELECT * FROM t1 ORDER BY a DESC;
`
	q2 := `
CREATE TABLE t1 (a INT, b VARCHAR(100));
SELECT * FROM t1 ORDER BY a DESC;
INSERT INTO t1 VALUES (1, 'name1');
INSERT INTO t1 VALUES (3, 'name1');
`
	e := newPG(t)
	out1 := run(t, e, q1)
	sorted := out1.Results[3]
	if len(sorted.Rows) != 2 || sorted.Rows[0][0].I != 3 {
		t.Fatalf("q1 rows = %v", sorted.Rows)
	}
	out2 := run(t, e, q2)
	empty := out2.Results[1]
	if len(empty.Rows) != 0 {
		t.Fatalf("q2 select should be empty, got %v", empty.Rows)
	}
}

func TestConstraints(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL, c INT CHECK (c > 0));
INSERT INTO t VALUES (1, 1, 1);
INSERT INTO t VALUES (1, 2, 2);
INSERT INTO t VALUES (2, NULL, 2);
INSERT INTO t VALUES (3, 3, -1);
INSERT INTO t VALUES (4, 4, 4);
SELECT COUNT(*) FROM t;
`)
	if out.Errors != 3 {
		t.Fatalf("want 3 constraint errors, got %d (%v)", out.Errors, out.Errs)
	}
	res := lastResult(t, out)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v, want 2", res.Rows[0][0])
	}
}

func TestJoinsAndAggregates(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE a (id INT, x INT);
CREATE TABLE b (id INT, y INT);
INSERT INTO a VALUES (1, 10), (2, 20), (3, 30);
INSERT INTO b VALUES (1, 100), (2, 200);
SELECT a.x, b.y FROM a JOIN b ON a.id = b.id ORDER BY a.x;
SELECT a.x FROM a LEFT JOIN b ON a.id = b.id WHERE b.y IS NULL;
SELECT SUM(x), COUNT(*), MAX(x) FROM a;
SELECT id, COUNT(*) FROM a GROUP BY id HAVING COUNT(*) > 0 ORDER BY id;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	join := out.Results[4]
	if len(join.Rows) != 2 || join.Rows[0][1].I != 100 {
		t.Fatalf("join rows = %v", join.Rows)
	}
	anti := out.Results[5]
	if len(anti.Rows) != 1 || anti.Rows[0][0].I != 30 {
		t.Fatalf("anti-join rows = %v", anti.Rows)
	}
	agg := out.Results[6]
	if agg.Rows[0][0].I != 60 || agg.Rows[0][1].I != 3 || agg.Rows[0][2].I != 30 {
		t.Fatalf("agg rows = %v", agg.Rows)
	}
}

func TestTransactions(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
BEGIN;
INSERT INTO t VALUES (2);
ROLLBACK;
SELECT COUNT(*) FROM t;
BEGIN;
INSERT INTO t VALUES (3);
SAVEPOINT sp1;
INSERT INTO t VALUES (4);
ROLLBACK TO SAVEPOINT sp1;
COMMIT;
SELECT COUNT(*) FROM t;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if got := out.Results[5].Rows[0][0].I; got != 1 {
		t.Fatalf("after rollback count = %d, want 1", got)
	}
	if got := out.Results[12].Rows[0][0].I; got != 2 {
		t.Fatalf("after savepoint rollback count = %d, want 2", got)
	}
}

func TestTriggersFire(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
CREATE TABLE log (n INT);
CREATE TRIGGER tr AFTER INSERT ON t FOR EACH ROW INSERT INTO log VALUES (1);
INSERT INTO t VALUES (1);
INSERT INTO t VALUES (2);
SELECT COUNT(*) FROM log;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if got := lastResult(t, out).Rows[0][0].I; got != 2 {
		t.Fatalf("log count = %d, want 2", got)
	}
}

func TestViewsAndCTE(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1), (2), (3);
CREATE VIEW v AS SELECT a FROM t WHERE a > 1;
SELECT COUNT(*) FROM v;
WITH c AS (SELECT a FROM t WHERE a < 3) SELECT COUNT(*) FROM c;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if got := out.Results[3].Rows[0][0].I; got != 2 {
		t.Fatalf("view count = %d", got)
	}
	if got := out.Results[4].Rows[0][0].I; got != 2 {
		t.Fatalf("cte count = %d", got)
	}
}

func TestDialectGating(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectComdb2})
	tc := sqlparse.MustParseScript("NOTIFY chan1;")
	out := e.RunTestCase(tc)
	if out.Errors != 1 {
		t.Fatalf("Comdb2 should reject NOTIFY, errs=%v", out.Errs)
	}
	e2 := New(Config{Dialect: sqlt.DialectPostgres})
	out2 := e2.RunTestCase(tc)
	if out2.Errors != 0 {
		t.Fatalf("PostgreSQL should accept NOTIFY: %v", out2.Errs)
	}
}

func TestCaseStudyBugFires(t *testing.T) {
	// The paper's §V-B PostgreSQL SEGV: CREATE RULE -> NOTIFY -> COPY -> WITH.
	e := New(Config{Dialect: sqlt.DialectPostgres, EnableHazards: true})
	tc := sqlparse.MustParseScript(`
CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);
CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;
COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV HEADER;
WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = 48;
`)
	out := e.RunTestCase(tc)
	if out.Crash == nil {
		t.Fatal("expected the jointree SEGV to fire")
	}
	if out.Crash.ID != "BUG #17152" || out.Crash.Component != "Optimizer" {
		t.Fatalf("wrong bug: %+v", out.Crash)
	}
	// Without hazards armed the same input must execute without crashing.
	e2 := New(Config{Dialect: sqlt.DialectPostgres})
	if out2 := e2.RunTestCase(tc); out2.Crash != nil {
		t.Fatalf("disarmed engine crashed: %v", out2.Crash)
	}
}

func TestHazardWindowMatching(t *testing.T) {
	// MySQL Fig. 3 sequence: CREATE TABLE -> INSERT -> CREATE TRIGGER -> SELECT.
	e := New(Config{Dialect: sqlt.DialectMySQL, EnableHazards: true})
	tc := sqlparse.MustParseScript(`
CREATE TABLE v0 (v1 INT);
INSERT INTO v0 VALUES (1);
CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 VALUES (2);
SELECT * FROM v0;
`)
	out := e.RunTestCase(tc)
	if out.Crash == nil || out.Crash.ID != "CVE-2021-35643" {
		t.Fatalf("want CVE-2021-35643, got %+v", out.Crash)
	}
	// A different order of the same statements must not crash.
	e2 := New(Config{Dialect: sqlt.DialectMySQL, EnableHazards: true})
	tc2 := sqlparse.MustParseScript(`
CREATE TABLE v0 (v1 INT);
CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 VALUES (2);
INSERT INTO v0 VALUES (1);
SELECT * FROM v0;
`)
	if out2 := e2.RunTestCase(tc2); out2.Crash != nil {
		t.Fatalf("permuted sequence should not crash, got %v", out2.Crash)
	}
}

func TestCoverageAccumulates(t *testing.T) {
	e := newPG(t)
	tc := sqlparse.MustParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	e.Tracer().Reset()
	e.RunTestCase(tc)
	if e.Tracer().Edges() == 0 {
		t.Fatal("no edges recorded")
	}
}

func TestBugCorpusCounts(t *testing.T) {
	want := map[sqlt.Dialect]int{
		sqlt.DialectPostgres: 6,
		sqlt.DialectMySQL:    21,
		sqlt.DialectMariaDB:  42,
		sqlt.DialectComdb2:   33,
	}
	total := 0
	for d, bugs := range AllBugs() {
		if len(bugs) != want[d] {
			t.Errorf("%s: %d bugs, want %d (Table I)", d, len(bugs), want[d])
		}
		total += len(bugs)
		// every pattern type must be inside the dialect profile
		ids := map[string]bool{}
		for _, b := range bugs {
			if ids[b.ID] {
				t.Errorf("%s: duplicate bug id %s", d, b.ID)
			}
			ids[b.ID] = true
			for _, pt := range b.Pattern {
				if !d.Supports(pt) {
					t.Errorf("%s: bug %s pattern uses unsupported type %s", d, b.ID, pt)
				}
			}
		}
	}
	if total != 102 {
		t.Fatalf("total bugs = %d, want 102", total)
	}
}
