// Package minidb implements the in-memory relational DBMS that serves as the
// fuzzing target, standing in for the PostgreSQL/MySQL/MariaDB/Comdb2
// binaries of the paper's evaluation (see DESIGN.md §2 for the substitution
// argument). The engine is deliberately rich in statement-order-sensitive
// state — catalogs, rows, triggers, rewrite rules, cursors, prepared
// statements, transactions, privileges — so that SQL Type Sequences
// genuinely determine which branches execute (the property of paper Fig. 2).
package minidb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind tags runtime values.
type Kind uint8

// Value kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KText
	KBool
)

// Value is one SQL runtime value.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Constructors.
func Null() Value           { return Value{K: KNull} }
func Int(v int64) Value     { return Value{K: KInt, I: v} }
func Float(v float64) Value { return Value{K: KFloat, F: v} }
func Text(s string) Value   { return Value{K: KText, S: s} }
func Bool(b bool) Value     { return Value{K: KBool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KNull }

// String renders the value for result sets and COPY output.
func (v Value) String() string {
	switch v.K {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KText:
		return v.S
	case KBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// numeric returns the value as float64 with a flag for whether it is
// numeric-coercible.
func (v Value) numeric() (float64, bool) {
	switch v.K {
	case KInt:
		return float64(v.I), true
	case KFloat:
		return v.F, true
	case KBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// Truthy evaluates the value in boolean context; NULL is not truthy.
func (v Value) Truthy() bool {
	switch v.K {
	case KBool:
		return v.B
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KText:
		return v.S != ""
	default:
		return false
	}
}

// kindRank orders kinds for cross-kind comparison: NULL < numbers/bools <
// text. The total order makes ORDER BY and DISTINCT deterministic.
func kindRank(k Kind) int {
	switch k {
	case KNull:
		return 0
	case KInt, KFloat, KBool:
		return 1
	default:
		return 2
	}
}

// Compare imposes a total order over values: -1, 0, or +1. NULLs compare
// lowest (useful for sorting); SQL three-valued NULL semantics are handled by
// the evaluator before comparison.
func Compare(a, b Value) int {
	ra, rb := kindRank(a.K), kindRank(b.K)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		fa, _ := a.numeric()
		fb, _ := b.numeric()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(a.S, b.S)
	}
}

// Equal reports SQL equality after coercion (NULL never equals anything; the
// evaluator handles the NULL case before calling Equal).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a string usable as a uniqueness key for index lookups and
// DISTINCT/GROUP BY hashing.
func (v Value) Key() string {
	switch v.K {
	case KNull:
		return "\x00N"
	case KInt:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case KFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			// integral floats collide with ints, as SQL equality does
			return "\x01" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KText:
		return "\x03" + v.S
	case KBool:
		if v.B {
			return "\x011"
		}
		return "\x010"
	default:
		return "\x04"
	}
}

// RowKey concatenates value keys for multi-column uniqueness.
func RowKey(vals []Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.Key())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// CoerceToColumn converts v to the storage representation of a column type,
// applying SQLite-style type affinity: INT columns store integral values,
// FLOAT columns store doubles, TEXT columns store strings, BOOLEAN columns
// store bools. Unconvertible values are stored as-is (dynamic typing), which
// mirrors the forgiving behaviour fuzzers exploit.
func CoerceToColumn(typeName string, v Value) Value {
	if v.IsNull() {
		return v
	}
	switch affinity(typeName) {
	case KInt:
		switch v.K {
		case KInt:
			return v
		case KFloat:
			if v.F == math.Trunc(v.F) {
				return Int(int64(v.F))
			}
			return v
		case KBool:
			if v.B {
				return Int(1)
			}
			return Int(0)
		case KText:
			if n, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64); err == nil {
				return Int(n)
			}
			return v
		}
	case KFloat:
		if f, ok := v.numeric(); ok {
			return Float(f)
		}
	case KText:
		return Text(v.String())
	case KBool:
		return Bool(v.Truthy())
	}
	return v
}

// affinity maps a SQL type name to a storage kind.
func affinity(typeName string) Kind {
	t := strings.ToUpper(typeName)
	switch {
	case strings.Contains(t, "INT") || strings.Contains(t, "YEAR") || strings.Contains(t, "SERIAL"):
		return KInt
	case strings.Contains(t, "FLOAT") || strings.Contains(t, "DOUBLE") ||
		strings.Contains(t, "REAL") || strings.Contains(t, "DECIMAL") ||
		strings.Contains(t, "NUMERIC"):
		return KFloat
	case strings.Contains(t, "BOOL"):
		return KBool
	default:
		return KText
	}
}

// errValue builds a typed execution error.
func errValue(format string, args ...any) error {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}

// ExecError is a recoverable SQL execution error (semantic errors, constraint
// violations). It corresponds to the server returning an error to the
// client; fuzzing continues with the next statement.
type ExecError struct {
	Msg string
}

// Error implements error.
func (e *ExecError) Error() string { return e.Msg }
