package minidb

import (
	"sort"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// execInsert handles INSERT and REPLACE.
func (e *Engine) execInsert(st *sqlast.InsertStmt) (*Result, error) {
	e.hit(pInsert)
	if err := e.checkPriv(st.Table, "INSERT"); err != nil {
		return nil, err
	}

	// PostgreSQL-style rewrite rules may replace the insert entirely.
	if handled, res, err := e.applyRules(st.Table, sqlast.TriggerInsert); handled {
		return res, err
	}

	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}

	// resolve target columns
	targets := make([]int, 0, len(t.Cols))
	if len(st.Cols) > 0 {
		for _, cn := range st.Cols {
			i := t.colIndex(cn)
			if i < 0 {
				return nil, errValue("column %q does not exist in %q", cn, st.Table)
			}
			targets = append(targets, i)
		}
	} else {
		for i := range t.Cols {
			targets = append(targets, i)
		}
	}

	// source rows
	var srcRows [][]Value
	switch {
	case st.Query != nil:
		e.hit(pInsertSelect)
		rows, _, err := e.execSelect(st.Query, nil, 0)
		if err != nil {
			return nil, err
		}
		srcRows = rows
	default:
		if len(st.Rows) > 1 {
			e.hit(pInsertMultiRow)
		}
		for _, exprRow := range st.Rows {
			if len(exprRow) == 0 {
				e.hit(pInsertDefault)
				srcRows = append(srcRows, nil) // all defaults
				continue
			}
			row := make([]Value, len(exprRow))
			for i, x := range exprRow {
				v, err := e.eval(x, emptyScope, 0)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	inserted := 0
	var retRows [][]Value
	for _, src := range srcRows {
		if src != nil && len(src) != len(targets) {
			return nil, errValue("INSERT has %d values but %d target columns", len(src), len(targets))
		}
		full, err := e.buildRow(t, targets, src)
		if err != nil {
			return nil, err
		}
		conflictIdx := e.findUniqueConflict(t, full, -1)
		if conflictIdx >= 0 {
			switch {
			case st.IsReplace:
				e.hit(pReplaceOverwrite)
				t.Rows[conflictIdx] = full
				inserted++
				continue
			case st.Ignore:
				e.hit(pInsertIgnoreDup)
				continue
			case st.OnConflictDoNothing:
				e.hit(pInsertConflict)
				continue
			default:
				return nil, errValue("duplicate key value violates unique constraint")
			}
		}
		if err := e.checkRowConstraints(t, full); err != nil {
			return nil, err
		}
		if err := e.fireTriggers(t.Name, sqlast.TriggerBefore, sqlast.TriggerInsert); err != nil {
			return nil, err
		}
		if len(t.Rows) >= e.limits.MaxRowsPerTable {
			e.hit(pStorageFull)
			return nil, errValue("table %q is full", t.Name)
		}
		e.hit(pStorageAppend)
		if len(t.Rows) == 0 {
			e.hit(pInsertFirstRow)
		}
		if len(t.Rows)&(len(t.Rows)+1) == 0 && len(t.Rows) > 0 {
			e.hit(pStorageGrow) // capacity-doubling boundary
		}
		t.Rows = append(t.Rows, full)
		t.analyzed = false
		inserted++
		e.rowsInserted++
		e.lastInsertTab = t.Name
		if err := e.fireTriggers(t.Name, sqlast.TriggerAfter, sqlast.TriggerInsert); err != nil {
			return nil, err
		}
		if len(st.Returning) > 0 {
			e.hit(pInsertReturning)
			sc := e.rowScope(t, full)
			var ret []Value
			for _, rx := range st.Returning {
				v, err := e.eval(rx, sc, 0)
				if err != nil {
					return nil, err
				}
				ret = append(ret, v)
			}
			retRows = append(retRows, ret)
		}
	}
	return &Result{Affected: inserted, Rows: retRows, Msg: "INSERT"}, nil
}

// buildRow assembles a full-width storage row from source values, applying
// defaults and coercion.
func (e *Engine) buildRow(t *Table, targets []int, src []Value) ([]Value, error) {
	full := make([]Value, len(t.Cols))
	filled := make([]bool, len(t.Cols))
	for n, ci := range targets {
		if src == nil {
			break
		}
		full[ci] = CoerceToColumn(t.Cols[ci].TypeName, src[n])
		filled[ci] = true
	}
	for ci := range t.Cols {
		if filled[ci] {
			continue
		}
		if t.Cols[ci].Default != nil {
			dv, err := e.eval(t.Cols[ci].Default, emptyScope, 0)
			if err != nil {
				return nil, err
			}
			full[ci] = CoerceToColumn(t.Cols[ci].TypeName, dv)
		} else {
			full[ci] = Null()
		}
	}
	return full, nil
}

// findUniqueConflict returns the index of a row conflicting on a PK/UNIQUE
// column or unique index, or -1. skip is a row index to ignore (for
// updates).
func (e *Engine) findUniqueConflict(t *Table, row []Value, skip int) int {
	for ci := range t.Cols {
		if !t.Cols[ci].Unique || row[ci].IsNull() {
			continue
		}
		for ri, ex := range t.Rows {
			if ri == skip {
				continue
			}
			if !ex[ci].IsNull() && Equal(ex[ci], row[ci]) {
				return ri
			}
		}
	}
	for _, ix := range e.cat.indexesFor(t.Name) {
		if !ix.Unique || ix.stale {
			continue
		}
		var key []Value
		valid := true
		for _, cn := range ix.Cols {
			ci := t.colIndex(cn)
			if ci < 0 {
				valid = false
				break
			}
			key = append(key, row[ci])
		}
		if !valid {
			continue
		}
		k := RowKey(key)
		for ri, ex := range t.Rows {
			if ri == skip {
				continue
			}
			var exKey []Value
			for _, cn := range ix.Cols {
				exKey = append(exKey, ex[t.colIndex(cn)])
			}
			if RowKey(exKey) == k {
				return ri
			}
		}
	}
	return -1
}

// checkRowConstraints enforces NOT NULL, CHECK, and FK constraints.
func (e *Engine) checkRowConstraints(t *Table, row []Value) error {
	for ci, col := range t.Cols {
		if col.NotNull && row[ci].IsNull() {
			e.hit(pInsertNotNull)
			return errValue("null value in column %q violates not-null constraint", col.Name)
		}
		if col.Check != nil {
			sc := e.rowScope(t, row)
			sc.row["VALUE"] = row[ci]
			v, err := e.eval(col.Check, sc, 0)
			if err != nil {
				return err
			}
			if !v.IsNull() && !v.Truthy() {
				e.hit(pInsertCheckFail)
				return errValue("check constraint on %q failed", col.Name)
			}
		}
		if col.RefTable != "" && !row[ci].IsNull() {
			e.hit(pInsertFKCheck)
			ref, ok := e.cat.Tables[col.RefTable]
			if !ok {
				return errValue("referenced table %q is gone", col.RefTable)
			}
			found := false
			for _, rr := range ref.Rows {
				for rci := range ref.Cols {
					if ref.Cols[rci].Unique && Equal(rr[rci], row[ci]) {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found && ref != t {
				return errValue("foreign key violation on column %q", col.Name)
			}
		}
	}
	for _, tc := range t.Constraints {
		if tc.Kind == "CHECK" && tc.Check != nil {
			sc := e.rowScope(t, row)
			v, err := e.eval(tc.Check, sc, 0)
			if err != nil {
				return err
			}
			if !v.IsNull() && !v.Truthy() {
				e.hit(pInsertCheckFail)
				return errValue("table check constraint failed")
			}
		}
	}
	return nil
}

// rowScope builds an evaluation scope for one row of a table.
func (e *Engine) rowScope(t *Table, row []Value) *scope {
	m := make(map[string]Value, 2*len(t.Cols))
	for ci := range t.Cols {
		if ci >= len(row) { // table reshaped mid-statement by a trigger
			break
		}
		m[t.Cols[ci].Name] = row[ci]
		m[t.Name+"."+t.Cols[ci].Name] = row[ci]
	}
	return &scope{row: m}
}

// fireTriggers runs the trigger bodies registered for (table, time, event).
func (e *Engine) fireTriggers(table string, tm sqlast.TriggerTime, ev sqlast.TriggerEvent) error {
	trs := e.cat.triggersFor(table, tm, ev)
	if len(trs) == 0 {
		return nil
	}
	if e.triggerDepth >= e.limits.MaxTriggerDepth ||
		e.triggerFires >= e.limits.MaxTriggerFires {
		e.hit(pTriggerDepthCap)
		return nil // silently stop cascading, like MySQL's max depth
	}
	e.triggerDepth++
	defer func() { e.triggerDepth-- }()
	for _, tr := range trs {
		e.triggerFires++
		e.hit(pTriggerFire)
		if tm == sqlast.TriggerBefore {
			e.hit(pTriggerBefore)
		}
		if e.triggerDepth > 1 {
			e.hit(pTriggerNested)
		}
		// trigger body errors abort the statement
		if _, err := e.dispatch(tr.Body); err != nil {
			return errValue("trigger %q failed: %s", tr.Name, err.Error())
		}
	}
	return nil
}

// matchingRowIdxs returns indexes of rows satisfying where, in ORDER BY
// order, truncated by limit (MySQL-style UPDATE/DELETE ... ORDER BY LIMIT).
func (e *Engine) matchingRowIdxs(t *Table, where sqlast.Expr, orderBy []sqlast.OrderItem, limit sqlast.Expr) ([]int, error) {
	// This runs before any trigger can fire for the statement, so the table
	// layout computed here cannot go stale mid-scan. Rows shorter than the
	// column list (table reshaped by an earlier statement's trigger) take the
	// interpreter per row: rowScope truncates its bindings where a slot read
	// would misresolve.
	compiled := !e.cfg.DisablePlanCache
	var lay layout
	if compiled && (where != nil || len(orderBy) > 0) {
		lay = e.tableLayout(t)
	}
	var idxs []int
	var wProg *program
	var wMach *machine
	if compiled && where != nil {
		wProg, wMach = e.preparedEval(where, lay, nil)
	}
	for ri, row := range t.Rows {
		if where != nil {
			var v Value
			var err error
			if wProg != nil && len(row) >= len(t.Cols) {
				wMach.bindRow(row)
				v, err = wProg.code(wMach, 0)
			} else {
				sc := e.rowScope(t, row)
				v, err = e.eval(where, sc, 0)
			}
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		idxs = append(idxs, ri)
	}
	if len(orderBy) > 0 {
		var obProgs []*program
		var obMachs []*machine
		if compiled {
			obProgs = make([]*program, len(orderBy))
			obMachs = make([]*machine, len(orderBy))
			for k, ob := range orderBy {
				obProgs[k], obMachs[k] = e.preparedEval(ob.X, lay, nil)
			}
		}
		keys := make(map[int][]Value, len(idxs))
		for _, ri := range idxs {
			row := t.Rows[ri]
			if compiled && len(row) >= len(t.Cols) {
				for k := range obProgs {
					obMachs[k].bindRow(row)
					v, err := obProgs[k].code(obMachs[k], 0)
					if err != nil {
						return nil, err
					}
					keys[ri] = append(keys[ri], v)
				}
				continue
			}
			sc := e.rowScope(t, row)
			for _, ob := range orderBy {
				v, err := e.eval(ob.X, sc, 0)
				if err != nil {
					return nil, err
				}
				keys[ri] = append(keys[ri], v)
			}
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			ka, kb := keys[idxs[a]], keys[idxs[b]]
			for k, ob := range orderBy {
				c := Compare(ka[k], kb[k])
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if limit != nil {
		n, err := e.evalInt(limit, nil, 0)
		if err != nil {
			return nil, err
		}
		if n >= 0 && int(n) < len(idxs) {
			idxs = idxs[:n]
		}
	}
	return idxs, nil
}

func (e *Engine) execUpdate(st *sqlast.UpdateStmt) (*Result, error) {
	e.hit(pUpdate)
	if st.Where == nil {
		e.hit(pUpdateNoWhere)
	}
	if err := e.checkPriv(st.Table, "UPDATE"); err != nil {
		return nil, err
	}
	if handled, res, err := e.applyRules(st.Table, sqlast.TriggerUpdate); handled {
		return res, err
	}
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	if t.locked != "" && t.locked != "self" {
		e.hit(pLockConflict)
	}
	idxs, err := e.matchingRowIdxs(t, st.Where, st.OrderBy, st.Limit)
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		e.hit(pUpdateZeroRows)
		return &Result{Affected: 0, Msg: "UPDATE"}, nil
	}
	setIdx := make([]int, len(st.Sets))
	for i, a := range st.Sets {
		ci := t.colIndex(a.Col)
		if ci < 0 {
			return nil, errValue("column %q does not exist in %q", a.Col, st.Table)
		}
		setIdx[i] = ci
	}
	// SET expressions compile only when no UPDATE trigger is registered:
	// trigger bodies interleave with the per-row SET evaluation and may
	// reshape the table, which would leave a pre-computed layout stale.
	// Coercion stays exec-side (below), so no column type is baked in.
	canCompileSets := !e.cfg.DisablePlanCache &&
		len(e.cat.triggersFor(t.Name, sqlast.TriggerBefore, sqlast.TriggerUpdate)) == 0 &&
		len(e.cat.triggersFor(t.Name, sqlast.TriggerAfter, sqlast.TriggerUpdate)) == 0
	var setProgs []*program
	var setMachs []*machine
	if canCompileSets {
		lay := e.tableLayout(t)
		setProgs = make([]*program, len(st.Sets))
		setMachs = make([]*machine, len(st.Sets))
		for i, a := range st.Sets {
			setProgs[i], setMachs[i] = e.preparedEval(a.Value, lay, nil)
		}
	}
	touched := 0
	for _, ri := range idxs {
		if err := e.fireTriggers(t.Name, sqlast.TriggerBefore, sqlast.TriggerUpdate); err != nil {
			return nil, err
		}
		// a BEFORE trigger body may have deleted rows or reshaped the table
		if ri >= len(t.Rows) {
			continue
		}
		newRow := append([]Value(nil), t.Rows[ri]...)
		var sc *scope
		if !canCompileSets || len(t.Rows[ri]) < len(t.Cols) {
			sc = e.rowScope(t, t.Rows[ri])
		}
		for i, a := range st.Sets {
			var v Value
			var err error
			if sc != nil {
				v, err = e.eval(a.Value, sc, 0)
			} else {
				setMachs[i].bindRow(t.Rows[ri])
				v, err = setProgs[i].code(setMachs[i], 0)
			}
			if err != nil {
				return nil, err
			}
			if setIdx[i] >= len(newRow) {
				continue
			}
			newRow[setIdx[i]] = CoerceToColumn(t.Cols[setIdx[i]].TypeName, v)
		}
		if err := e.checkRowConstraints(t, newRow); err != nil {
			return nil, err
		}
		if c := e.findUniqueConflict(t, newRow, ri); c >= 0 {
			return nil, errValue("duplicate key value violates unique constraint")
		}
		if len(e.cat.indexesFor(t.Name)) > 0 {
			e.hit(pUpdateIndexMaint)
		}
		t.Rows[ri] = newRow
		touched++
		if err := e.fireTriggers(t.Name, sqlast.TriggerAfter, sqlast.TriggerUpdate); err != nil {
			return nil, err
		}
	}
	t.analyzed = false
	return &Result{Affected: touched, Msg: "UPDATE"}, nil
}

func (e *Engine) execDelete(st *sqlast.DeleteStmt) (*Result, error) {
	e.hit(pDelete)
	if st.Where == nil {
		e.hit(pDeleteAll)
	}
	if err := e.checkPriv(st.Table, "DELETE"); err != nil {
		return nil, err
	}
	if handled, res, err := e.applyRules(st.Table, sqlast.TriggerDelete); handled {
		return res, err
	}
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	idxs, err := e.matchingRowIdxs(t, st.Where, st.OrderBy, st.Limit)
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		e.hit(pDeleteZeroRows)
		return &Result{Affected: 0, Msg: "DELETE"}, nil
	}
	var retRows [][]Value
	del := make(map[int]bool, len(idxs))
	for _, ri := range idxs {
		if err := e.fireTriggers(t.Name, sqlast.TriggerBefore, sqlast.TriggerDelete); err != nil {
			return nil, err
		}
		if ri >= len(t.Rows) {
			continue
		}
		if len(st.Returning) > 0 {
			sc := e.rowScope(t, t.Rows[ri])
			var ret []Value
			for _, rx := range st.Returning {
				v, err := e.eval(rx, sc, 0)
				if err != nil {
					return nil, err
				}
				ret = append(ret, v)
			}
			retRows = append(retRows, ret)
		}
		del[ri] = true
		if err := e.fireTriggers(t.Name, sqlast.TriggerAfter, sqlast.TriggerDelete); err != nil {
			return nil, err
		}
	}
	var kept [][]Value
	for ri, row := range t.Rows {
		if !del[ri] {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	t.analyzed = false
	return &Result{Affected: len(del), Rows: retRows, Msg: "DELETE"}, nil
}

func (e *Engine) execMerge(st *sqlast.MergeStmt) (*Result, error) {
	target, err := e.lookTable(st.Target)
	if err != nil {
		return nil, err
	}
	source, err := e.lookTable(st.Source)
	if err != nil {
		return nil, err
	}
	if err := e.checkPriv(st.Target, "UPDATE"); err != nil {
		return nil, err
	}
	affected := 0
	var toDelete []int
	for _, srow := range source.Rows {
		matchedAny := false
		for ri, trow := range target.Rows {
			sc := &scope{row: map[string]Value{}}
			for ci := range target.Cols {
				sc.row[target.Cols[ci].Name] = trow[ci]
				sc.row[st.Target+"."+target.Cols[ci].Name] = trow[ci]
			}
			for ci := range source.Cols {
				sc.row[st.Source+"."+source.Cols[ci].Name] = srow[ci]
			}
			v, err := e.eval(st.On, sc, 0)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
			matchedAny = true
			if len(st.MatchedSet) > 0 {
				e.hit(pMergeMatched)
				newRow := append([]Value(nil), trow...)
				for _, a := range st.MatchedSet {
					ci := target.colIndex(a.Col)
					if ci < 0 {
						return nil, errValue("column %q does not exist", a.Col)
					}
					av, err := e.eval(a.Value, sc, 0)
					if err != nil {
						return nil, err
					}
					newRow[ci] = CoerceToColumn(target.Cols[ci].TypeName, av)
				}
				target.Rows[ri] = newRow
			} else {
				toDelete = append(toDelete, ri)
			}
			affected++
		}
		if !matchedAny && st.NotMatchedVals != nil {
			e.hit(pMergeNotMatched)
			if len(st.NotMatchedVals) != len(target.Cols) {
				return nil, errValue("MERGE insert arity mismatch")
			}
			row := make([]Value, len(target.Cols))
			sc := &scope{row: map[string]Value{}}
			for ci := range source.Cols {
				sc.row[source.Cols[ci].Name] = srow[ci]
				sc.row[st.Source+"."+source.Cols[ci].Name] = srow[ci]
			}
			for i, x := range st.NotMatchedVals {
				v, err := e.eval(x, sc, 0)
				if err != nil {
					return nil, err
				}
				row[i] = CoerceToColumn(target.Cols[i].TypeName, v)
			}
			if len(target.Rows) >= e.limits.MaxRowsPerTable {
				e.hit(pStorageFull)
				return nil, errValue("table %q is full", target.Name)
			}
			target.Rows = append(target.Rows, row)
			affected++
		}
	}
	if len(toDelete) > 0 {
		del := map[int]bool{}
		for _, ri := range toDelete {
			del[ri] = true
		}
		var kept [][]Value
		for ri, row := range target.Rows {
			if !del[ri] {
				kept = append(kept, row)
			}
		}
		target.Rows = kept
	}
	target.analyzed = false
	return &Result{Affected: affected, Msg: "MERGE"}, nil
}

func (e *Engine) execCopy(st *sqlast.CopyStmt) (*Result, error) {
	if st.From {
		e.hit(pCopyIn)
		t, err := e.lookTable(st.Table)
		if err != nil {
			return nil, err
		}
		// Inline payload rows: each line "v1,v2,...".
		n := 0
		for _, line := range strings.Split(st.Data, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			parts := strings.Split(line, ",")
			if len(parts) != len(t.Cols) {
				return nil, errValue("COPY row has %d fields, want %d", len(parts), len(t.Cols))
			}
			row := make([]Value, len(t.Cols))
			for i, p := range parts {
				row[i] = CoerceToColumn(t.Cols[i].TypeName, Text(p))
			}
			if len(t.Rows) >= e.limits.MaxRowsPerTable {
				e.hit(pStorageFull)
				break
			}
			t.Rows = append(t.Rows, row)
			n++
		}
		return &Result{Affected: n, Msg: "COPY"}, nil
	}
	e.hit(pCopyOut)
	var rows [][]Value
	var cols []string
	if st.Query != nil {
		e.hit(pCopyOutQuery)
		r, c, err := e.execSelect(st.Query, nil, 0)
		if err != nil {
			return nil, err
		}
		rows, cols = r, c
	} else {
		t, err := e.lookTable(st.Table)
		if err != nil {
			return nil, err
		}
		if err := e.checkPriv(st.Table, "SELECT"); err != nil {
			return nil, err
		}
		for _, c := range t.Cols {
			cols = append(cols, c.Name)
		}
		rows = t.Rows
	}
	var sb strings.Builder
	if st.CSV {
		sb.WriteString(strings.Join(cols, ","))
		sb.WriteByte('\n')
	}
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return &Result{Cols: cols, Rows: rows, Msg: sb.String()}, nil
}

func (e *Engine) execLoadData(st *sqlast.LoadDataStmt) (*Result, error) {
	e.hit(pLoadData)
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	// The engine is hermetic: LOAD DATA synthesizes three deterministic rows
	// whose values depend on the (virtual) file name, exercising the bulk
	// load path without touching the filesystem.
	n := 0
	for k := 0; k < 3; k++ {
		row := make([]Value, len(t.Cols))
		for ci, col := range t.Cols {
			switch affinity(col.TypeName) {
			case KInt:
				row[ci] = Int(int64(len(st.File) + k + ci))
			case KFloat:
				row[ci] = Float(float64(k) + 0.5)
			case KBool:
				row[ci] = Bool(k%2 == 0)
			default:
				row[ci] = Text(st.File)
			}
		}
		if e.findUniqueConflict(t, row, -1) >= 0 {
			continue
		}
		if len(t.Rows) >= e.limits.MaxRowsPerTable {
			e.hit(pStorageFull)
			break
		}
		t.Rows = append(t.Rows, row)
		n++
	}
	t.analyzed = false
	return &Result{Affected: n, Msg: "LOAD DATA"}, nil
}

func (e *Engine) execCall(st *sqlast.CallStmt) (*Result, error) {
	e.hit(pCall)
	p, ok := e.cat.Procedures[st.Name]
	if !ok {
		return nil, errValue("procedure %q does not exist", st.Name)
	}
	if e.triggerDepth >= e.limits.MaxTriggerDepth {
		e.hit(pTriggerDepthCap)
		return ok2("CALL (depth cap)")
	}
	e.triggerDepth++
	defer func() { e.triggerDepth-- }()
	return e.dispatch(p.Body)
}

func ok2(msg string) (*Result, error) { return &Result{Msg: msg}, nil }

func (e *Engine) execDo(st *sqlast.DoStmt) (*Result, error) {
	e.hit(pDo)
	if _, err := e.eval(st.Body, emptyScope, 0); err != nil {
		return nil, err
	}
	return ok("DO")
}
