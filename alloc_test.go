// Allocation budgets for the fuzz loop's hottest operations. Wall-clock
// benchmarks are machine-dependent and flaky in CI; allocation counts are
// exact and stable, so this test runs unconditionally in `make ci` and
// fails the moment a change regresses per-op allocation behaviour.
//
// The ceilings are fixed numbers, not measurements: they encode the
// performance contract established by the structural-clone and
// allocation-reuse work. Lowering one after an optimization is encouraged;
// raising one is a perf regression that needs justification.
package lego_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// allocStmt is a representative hot-path statement: a join query with a
// WHERE clause and ORDER BY, the shape the mutators clone most.
const allocStmtSQL = `SELECT t1.v1, t2.v2 FROM t1 JOIN t2 ON (t1.v1 = t2.v1) WHERE (t1.v2 > 3) ORDER BY t1.v1 DESC LIMIT 10`

func TestAllocBudgets(t *testing.T) {
	stmt := sqlparse.MustParseScript(allocStmtSQL + ";")[0]
	tc := sqlparse.MustParseScript(`
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 2);
SELECT v1 FROM t1 WHERE (v2 = 2);
`)

	check := func(name string, ceiling float64, f func()) {
		t.Helper()
		got := testing.AllocsPerRun(200, f)
		t.Logf("%-16s %5.1f allocs/op (budget %.0f)", name, got, ceiling)
		if got > ceiling {
			t.Errorf("%s: %.1f allocs/op, budget %.0f", name, got, ceiling)
		}
	}

	// Structural clone of the join query: one allocation per node plus one
	// per non-empty slice. The reparse path this replaced cost hundreds.
	check("CloneStatement", 25, func() {
		_ = sqlparse.CloneStatement(stmt)
	})

	// Cold render of the join query: builder growth plus child renders.
	cold := stmt.(*sqlast.SelectStmt)
	check("render-cold", 20, func() {
		sqlast.InvalidateSQL(cold)
		_ = cold.SQL()
	})

	// Memoized render: zero — SQL() must return the cached string.
	_ = stmt.SQL()
	check("render-memoized", 0, func() {
		_ = stmt.SQL()
	})

	// Test-case clone: clone of every statement plus the slice header.
	check("CloneTestCase", 25, func() {
		_ = sqlparse.CloneTestCase(tc)
	})

	// Coverage tracer hit and map accumulate: steady-state zero. The
	// tracer's touched list is pre-sized; Accumulate only reads it.
	tr := coverage.NewTracer()
	sites := []coverage.Site{
		coverage.NewSite("alloc-budget-a"),
		coverage.NewSite("alloc-budget-b"),
		coverage.NewSite("alloc-budget-c"),
	}
	check("Tracer.Hit", 0, func() {
		for _, s := range sites {
			tr.Hit(s)
		}
		tr.Reset()
	})

	m := coverage.NewMap()
	for _, s := range sites {
		tr.Hit(s)
	}
	m.Accumulate(tr)
	check("Map.Accumulate", 0, func() {
		_, _ = m.Accumulate(tr)
	})
	tr.Reset()

	// Coverage batch append and flush: steady-state zero. The batch buffer
	// is pre-sized and reused; Flush only bumps existing tracer counters.
	b := coverage.NewBatch(16)
	check("Batch-flush", 0, func() {
		for _, s := range sites {
			b.Add(s)
		}
		tr.Flush(b)
		tr.Reset()
	})

	// Compiled statement execution over a full (128-row) table. The ceiling
	// is a fixed per-statement cost (result assembly, prepared machines,
	// filtered rows) that does NOT scale with the scanned rows: per-row
	// evaluation on the compiled path — slot reads, comparisons, coverage
	// probes — must be allocation-free. On the interpreter this statement
	// cost a scope map write per row per column.
	eng := minidb.New(minidb.Config{Dialect: sqlt.DialectMySQL})
	var sb strings.Builder
	sb.WriteString("CREATE TABLE big (a INT, b INT);\n")
	sb.WriteString("INSERT INTO big VALUES (0, 0)")
	for i := 1; i < 128; i++ {
		fmt.Fprintf(&sb, ", (%d, %d)", i, i*3)
	}
	sb.WriteString(";\n")
	for _, s := range sqlparse.MustParseScript(sb.String()) {
		if _, err := eng.ExecStmt(s); err != nil {
			t.Fatal(err)
		}
	}
	sel := sqlparse.MustParseScript("SELECT a, b FROM big WHERE a = 100 AND b > 50 ORDER BY b;")[0]
	if _, err := eng.ExecStmt(sel); err != nil { // warm the plan cache
		t.Fatal(err)
	}
	check("ExecStmt-compiled", 40, func() {
		_, _ = eng.ExecStmt(sel)
	})
}
