// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the design-choice ablations listed in DESIGN.md.
// Each benchmark re-runs the corresponding experiment at a reduced budget
// and reports the headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. For the full-scale (paper-layout) output run
// `go run ./cmd/benchall`.
package lego_test

import (
	"fmt"
	"testing"

	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/experiment"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func newBenchEngine() *minidb.Engine {
	return minidb.New(minidb.Config{Dialect: sqlt.DialectPostgres})
}

func benchSeed() sqlast.TestCase {
	return sqlparse.MustParseScript(`
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
INSERT INTO t1 VALUES (2, 1);
SELECT v2 FROM t1 ORDER BY v1;
SELECT v2 FROM t1 WHERE v1 = 1;
`)
}

func benchBudgets() experiment.Budgets { return experiment.QuickBudgets() }

// BenchmarkTable1 regenerates Table I: bugs found by LEGO in continuous
// fuzzing across the four DBMS profiles (paper: 102 total; 6/21/42/33).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Table1(benchBudgets())
		b.ReportMetric(float64(res.Total), "bugs_total")
		b.ReportMetric(float64(res.PerDialect[sqlt.DialectPostgres]), "bugs_pg")
		b.ReportMetric(float64(res.PerDialect[sqlt.DialectMySQL]), "bugs_mysql")
		b.ReportMetric(float64(res.PerDialect[sqlt.DialectMariaDB]), "bugs_mariadb")
		b.ReportMetric(float64(res.PerDialect[sqlt.DialectComdb2]), "bugs_comdb2")
	}
}

// BenchmarkFigure9 regenerates Figure 9: branch coverage of the four
// fuzzers on the four DBMSs (paper: LEGO +198%/+44%/+120% over
// SQLancer/SQLsmith/SQUIRREL).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Figure9(benchBudgets())
		lego, squirrel, sqlancer := 0, 0, 0
		for _, d := range sqlt.Dialects() {
			lego += res.Branches[d][experiment.FuzzerLEGO]
			squirrel += res.Branches[d][experiment.FuzzerSquirrel]
			sqlancer += res.Branches[d][experiment.FuzzerSQLancer]
		}
		b.ReportMetric(float64(lego), "branches_lego")
		b.ReportMetric(float64(squirrel), "branches_squirrel")
		b.ReportMetric(float64(sqlancer), "branches_sqlancer")
		b.ReportMetric(float64(res.Branches[sqlt.DialectPostgres][experiment.FuzzerSQLsmith]), "branches_sqlsmith_pg")
	}
}

// BenchmarkTable2 regenerates Table II: type-affinities contained in
// generated test cases (paper totals: SQLancer 770, SQUIRREL 119, LEGO
// 3707 — SQLancer embeds more affinities than SQUIRREL despite lower
// coverage).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Table2(benchBudgets())
		tot := res.Totals()
		b.ReportMetric(float64(tot[experiment.FuzzerLEGO]), "affinities_lego")
		b.ReportMetric(float64(tot[experiment.FuzzerSquirrel]), "affinities_squirrel")
		b.ReportMetric(float64(tot[experiment.FuzzerSQLancer]), "affinities_sqlancer")
	}
}

// BenchmarkTable3 regenerates Table III: bugs triggered under the 24-hour-
// equivalent budget (paper: SQLancer 0, SQLsmith 0, SQUIRREL 11, LEGO 52).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Table3(benchBudgets())
		tot := res.Totals()
		b.ReportMetric(float64(tot[experiment.FuzzerLEGO]), "bugs_lego")
		b.ReportMetric(float64(tot[experiment.FuzzerSquirrel]), "bugs_squirrel")
		b.ReportMetric(float64(tot[experiment.FuzzerSQLancer]), "bugs_sqlancer")
		b.ReportMetric(float64(tot[experiment.FuzzerSQLsmith]), "bugs_sqlsmith")
	}
}

// BenchmarkTable4 regenerates Table IV: the LEGO- ablation (paper: LEGO
// improves branches by 20%/15%/25%/7%, correlated with statement-type
// count).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Table4(benchBudgets())
		for _, d := range sqlt.Dialects() {
			name := map[sqlt.Dialect]string{
				sqlt.DialectPostgres: "pg", sqlt.DialectMySQL: "mysql",
				sqlt.DialectMariaDB: "mariadb", sqlt.DialectComdb2: "comdb2",
			}[d]
			if res.BrMinus[d] > 0 {
				imp := float64(res.BrLego[d]-res.BrMinus[d]) / float64(res.BrMinus[d]) * 100
				b.ReportMetric(imp, "improv_pct_"+name)
			}
		}
	}
}

// BenchmarkLengthStudy regenerates the §VI sequence-length discussion
// (paper: 30/35/27 bugs on MariaDB for LEN=3/5/8).
func BenchmarkLengthStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.LengthStudy(benchBudgets())
		b.ReportMetric(float64(res.Bugs[3]), "bugs_len3")
		b.ReportMetric(float64(res.Bugs[5]), "bugs_len5")
		b.ReportMetric(float64(res.Bugs[8]), "bugs_len8")
	}
}

// BenchmarkAblationRandomSeq compares affinity-gated synthesis against
// uniformly random sequence generation under equal budgets (DESIGN.md §10) —
// the strawman of challenges C1/C2.
func BenchmarkAblationRandomSeq(b *testing.B) {
	bud := benchBudgets()
	for i := 0; i < b.N; i++ {
		gated := experiment.RunCampaign(experiment.FuzzerLEGO, sqlt.DialectMariaDB, bud.DayStmts, bud.Seed, 0)
		random := experiment.RunCampaign(experiment.FuzzerLEGORandomSeq, sqlt.DialectMariaDB, bud.DayStmts, bud.Seed, 0)
		b.ReportMetric(float64(gated.Branches), "branches_affinity_gated")
		b.ReportMetric(float64(random.Branches), "branches_random_seq")
		b.ReportMetric(float64(gated.Bugs()), "bugs_affinity_gated")
		b.ReportMetric(float64(random.Bugs()), "bugs_random_seq")
	}
}

// BenchmarkAblationNoCovGate compares coverage-gated affinity extraction
// against extract-from-everything (DESIGN.md §10).
func BenchmarkAblationNoCovGate(b *testing.B) {
	bud := benchBudgets()
	for i := 0; i < b.N; i++ {
		gated := experiment.RunCampaign(experiment.FuzzerLEGO, sqlt.DialectMySQL, bud.DayStmts, bud.Seed, 0)
		open := experiment.RunCampaign(experiment.FuzzerLEGONoCovGate, sqlt.DialectMySQL, bud.DayStmts, bud.Seed, 0)
		b.ReportMetric(float64(gated.Branches), "branches_cov_gated")
		b.ReportMetric(float64(open.Branches), "branches_no_gate")
		b.ReportMetric(float64(gated.DiscoveredAffinities), "affinities_cov_gated")
		b.ReportMetric(float64(open.DiscoveredAffinities), "affinities_no_gate")
	}
}

// BenchmarkExtensionSplitSeeds measures the paper's §VI future-work
// extension — splitting long retained seeds into overlapping short seeds —
// against stock LEGO under equal budgets.
func BenchmarkExtensionSplitSeeds(b *testing.B) {
	bud := benchBudgets()
	for i := 0; i < b.N; i++ {
		stock := experiment.RunCampaign(experiment.FuzzerLEGO, sqlt.DialectMariaDB, bud.DayStmts, bud.Seed+1, 0)
		split := experiment.RunCampaign(experiment.FuzzerLEGOSplit, sqlt.DialectMariaDB, bud.DayStmts, bud.Seed+1, 0)
		b.ReportMetric(float64(stock.Bugs()), "bugs_stock")
		b.ReportMetric(float64(split.Bugs()), "bugs_split")
		b.ReportMetric(float64(stock.Branches), "branches_stock")
		b.ReportMetric(float64(split.Branches), "branches_split")
	}
}

// BenchmarkShardedFigure9 measures the sharded campaign executor on the
// Figure 9 MariaDB campaign: the same total statement budget run at 1, 2,
// and 4 workers. The branches/bugs metrics are deterministic per worker
// count (rerunning a row reproduces it bit-for-bit); stmts/s is the
// machine-dependent part, and its speedup across rows tracks the host's
// core count because shards only synchronize at epoch barriers.
func BenchmarkShardedFigure9(b *testing.B) {
	bud := benchBudgets()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var branches, bugs int
			for i := 0; i < b.N; i++ {
				res := experiment.RunShardedCampaign(sqlt.DialectMariaDB, bud.DayStmts, bud.Seed, 0, w, 0)
				branches, bugs = res.Branches, res.Bugs()
			}
			b.ReportMetric(float64(branches), "branches")
			b.ReportMetric(float64(bugs), "bugs")
			b.ReportMetric(float64(bud.DayStmts)*float64(b.N)/b.Elapsed().Seconds(), "stmts/s")
		})
	}
}

// BenchmarkEngineThroughput measures raw substrate speed: statements per
// second on the Figure 1 seed, the denominator of every campaign budget.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := newBenchEngine()
	tc := benchSeed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Tracer().Reset()
		out := eng.RunTestCase(tc)
		if out.Crash != nil {
			b.Fatal("unexpected crash")
		}
	}
	b.ReportMetric(float64(len(tc)), "stmts/exec")
}

// --- hot-path microbenchmarks -------------------------------------------
//
// These isolate the per-candidate costs the campaign numbers are built
// from: cloning (every mutation), rendering (oracle recording and
// checkpointing), execution, and coverage accumulation. All report allocs;
// TestAllocBudgets pins the alloc counts, these pin the wall-clock.

// benchCloneStmt is the join-query shape the mutators clone most.
const benchCloneStmtSQL = `SELECT t1.v1, t2.v2 FROM t1 JOIN t2 ON (t1.v1 = t2.v1) WHERE (t1.v2 > 3) ORDER BY t1.v1 DESC LIMIT 10;`

// BenchmarkCloneStructural measures the structural statement clone that
// backs sqlparse.CloneStatement on the hot path.
func BenchmarkCloneStructural(b *testing.B) {
	s := sqlparse.MustParseScript(benchCloneStmtSQL)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

// BenchmarkCloneByReparse measures the retired render+reparse clone, kept
// as the property-test oracle — the contrast row for BenchmarkCloneStructural.
func BenchmarkCloneByReparse(b *testing.B) {
	s := sqlparse.MustParseScript(benchCloneStmtSQL)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sqlparse.CloneStatementByReparse(s)
	}
}

// BenchmarkRenderCold measures a full SQL render with a cold memo.
func BenchmarkRenderCold(b *testing.B) {
	s := sqlparse.MustParseScript(benchCloneStmtSQL)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sqlast.InvalidateSQL(s)
		_ = s.SQL()
	}
}

// BenchmarkRenderMemoized measures the cached SQL() path.
func BenchmarkRenderMemoized(b *testing.B) {
	s := sqlparse.MustParseScript(benchCloneStmtSQL)[0]
	_ = s.SQL()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.SQL()
	}
}

// BenchmarkCoverageAccumulate measures one tracer fold into the global map
// at a realistic touched-edge count.
func BenchmarkCoverageAccumulate(b *testing.B) {
	eng := newBenchEngine()
	tc := benchSeed()
	eng.Tracer().Reset()
	if out := eng.RunTestCase(tc); out.Crash != nil {
		b.Fatal("unexpected crash")
	}
	m := coverage.NewMap()
	tr := eng.Tracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.Accumulate(tr)
	}
	b.ReportMetric(float64(tr.Edges()), "edges/op")
}
